(* Small random-instance generators for the benchmark harness. *)

module Database = Paradb_relational.Database
module Relation = Paradb_relational.Relation
module Value = Paradb_relational.Value
module Circuit = Paradb_wsat.Circuit
open Paradb_query

let tree_db rng =
  let relation (name, arity) =
    let rows =
      List.init 12 (fun _ ->
          Array.init arity (fun _ -> Value.Int (Random.State.int rng 4)))
    in
    Relation.create ~name ~schema:(List.init arity (Printf.sprintf "a%d")) rows
  in
  Database.of_relations (List.map relation [ ("r1", 1); ("r2", 2); ("r3", 3) ])

(* Acyclic by construction: each atom shares one variable with an earlier
   one. *)
let tree_query rng =
  let n_atoms = 3 + Random.State.int rng 3 in
  let fresh = ref 0 in
  let new_var () =
    incr fresh;
    Printf.sprintf "v%d" (!fresh - 1)
  in
  let all_vars = ref [] in
  let atoms = ref [] in
  for i = 0 to n_atoms - 1 do
    let arity = 1 + Random.State.int rng 3 in
    let shared =
      if i = 0 then new_var ()
      else List.nth !all_vars (Random.State.int rng (List.length !all_vars))
    in
    let args =
      Term.var shared :: List.init (arity - 1) (fun _ -> Term.var (new_var ()))
    in
    atoms := Atom.make (Printf.sprintf "r%d" arity) args :: !atoms;
    List.iter
      (fun v -> if not (List.mem v !all_vars) then all_vars := v :: !all_vars)
      (Term.vars args)
  done;
  Cq.make ~head:[] !atoms

let positive_sentence rng ~depth =
  let rels = [| ("r1", 1); ("r2", 2) |] in
  let bound = ref [] in
  let fresh = ref 0 in
  let rec go depth =
    if depth = 0 || (Random.State.int rng 3 = 0 && !bound <> []) then begin
      let name, arity = rels.(Random.State.int rng (Array.length rels)) in
      let args =
        List.init arity (fun _ ->
            if !bound <> [] && Random.State.bool rng then
              Term.var
                (List.nth !bound (Random.State.int rng (List.length !bound)))
            else Term.int (Random.State.int rng 4))
      in
      Fo.atom name args
    end
    else
      match Random.State.int rng 3 with
      | 0 -> Fo.conj (List.init 2 (fun _ -> go (depth - 1)))
      | 1 -> Fo.disj (List.init 2 (fun _ -> go (depth - 1)))
      | _ ->
          let x =
            incr fresh;
            Printf.sprintf "q%d" !fresh
          in
          bound := x :: !bound;
          let body = go (depth - 1) in
          bound := List.tl !bound;
          Fo.exists [ x ] body
  in
  go depth

let monotone_circuit rng ~n_inputs ~n_gates =
  let gates = ref [] in
  let count = ref 0 in
  let emit g =
    gates := g :: !gates;
    incr count;
    !count - 1
  in
  let inputs = List.init n_inputs (fun i -> emit (Circuit.G_input i)) in
  let pool = ref inputs in
  for _ = 1 to n_gates do
    let pick () = List.nth !pool (Random.State.int rng (List.length !pool)) in
    let children =
      List.sort_uniq Int.compare
        (List.init (1 + Random.State.int rng 3) (fun _ -> pick ()))
    in
    let id =
      emit
        (if Random.State.bool rng then Circuit.G_and children
         else Circuit.G_or children)
    in
    pool := id :: !pool
  done;
  Circuit.make ~n_inputs
    (Array.of_list (List.rev !gates))
    ~output:(List.hd !pool)
