bench/main.mli:
