bench/qgen_db.ml: Array Atom Cq Fo Int List Paradb_query Paradb_relational Paradb_wsat Printf Random Term
