(* Comparison constraints (Section 5, "Comparison Constraints"):

     "Find the employees that have higher salary than their manager:
        G(e) :- EM(e,m), ES(e,s), ES(m,s'), s' < s"

   Before evaluating such a query one must check the comparison system
   for consistency and collapse the implied equalities (Klug's method):
   this example shows consistent, inconsistent, and collapsing systems.
   Theorem 3 says this class is W[1]-complete, so — unlike the [!=]
   queries of employees.ml — there is no fixed-parameter engine to
   dispatch to; Paradb_core.Comparisons falls back to naive evaluation
   when genuine comparisons remain.

   Run with: dune exec examples/salary.exe *)

module Relation = Paradb_relational.Relation
module Comparisons = Paradb_core.Comparisons
open Paradb_query

let describe q =
  match Comparisons.preprocess q with
  | Comparisons.Inconsistent ->
      Format.printf "  %a@.    -> inconsistent (empty for every database)@." Cq.pp q
  | Comparisons.Collapsed q' ->
      Format.printf "  %a@.    -> consistent; collapsed form: %a@." Cq.pp q Cq.pp q'

let () =
  Format.printf "=== Consistency preprocessing ===@.";
  describe (Parser.parse_cq "g(E) :- em(E, M), es(E, S), es(M, S2), S2 < S.");
  describe (Parser.parse_cq "g() :- e(X, Y), X < Y, Y < X.");
  describe (Parser.parse_cq "g(X, Y) :- e(X, Y), X <= Y, Y <= X.");
  describe (Parser.parse_cq "g(X) :- e(X, Y), X <= 3, 3 <= X.");
  describe (Parser.parse_cq "g() :- e(X, Y), 3 <= X, X <= 2.");
  Format.printf "@.";

  Format.printf "=== Employees earning more than their manager ===@.";
  let db =
    Parser.parse_facts
      {|
        em(bob, ada).   em(cem, ada).   em(dora, bob).
        es(ada, 100).   es(bob, 120).   es(cem, 80).   es(dora, 130).
      |}
  in
  let q = Parser.parse_cq "g(E) :- em(E, M), es(E, S), es(M, S2), S2 < S." in
  let result = Comparisons.evaluate db q in
  Format.printf "  overpaid (vs manager):@.%a@." Relation.pp result;
  Format.printf "  agrees with naive evaluation: %b@.@."
    (Relation.set_equal result (Paradb_eval.Cq_naive.evaluate db q));

  (* Why there is no FPT engine here: Theorem 3 embeds k-clique into
     acyclic queries with strict comparisons.  Watch the reduction work. *)
  Format.printf "=== Theorem 3: clique hides inside comparison queries ===@.";
  let module Graph = Paradb_graph.Graph in
  let rng = Random.State.make [| 7 |] in
  let g, _ = Graph.planted_clique rng 7 0.3 3 in
  let q3, db3 = Paradb_reductions.Clique_to_comparisons.reduce g ~k:3 in
  Format.printf "  graph: n=%d m=%d; query has %d atoms, %d comparisons@."
    (Graph.n_vertices g) (Graph.n_edges g)
    (List.length q3.Cq.body)
    (List.length q3.Cq.constraints);
  Format.printf "  query hypergraph acyclic: %b@."
    (Comparisons.is_acyclic_with_comparisons q3);
  Format.printf "  3-clique exists: %b; query satisfiable: %b@."
    (Graph.has_clique g 3)
    (Paradb_eval.Cq_naive.is_satisfiable db3 q3)
