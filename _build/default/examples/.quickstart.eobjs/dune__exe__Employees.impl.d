examples/employees.ml: Cq Format List Paradb_core Paradb_eval Paradb_query Paradb_relational Paradb_workload Parser Random
