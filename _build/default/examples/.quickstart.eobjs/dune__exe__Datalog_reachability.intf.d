examples/datalog_reachability.mli:
