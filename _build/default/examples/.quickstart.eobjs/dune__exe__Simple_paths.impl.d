examples/simple_paths.ml: Cq Format List Paradb_core Paradb_graph Paradb_query Random String
