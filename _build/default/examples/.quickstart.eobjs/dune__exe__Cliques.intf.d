examples/cliques.mli:
