examples/containment.ml: Array Atom Binding Containment Cq Database Format Graph List Paradb Parser Random Reductions Relation Term Value
