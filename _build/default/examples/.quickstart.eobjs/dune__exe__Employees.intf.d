examples/employees.mli:
