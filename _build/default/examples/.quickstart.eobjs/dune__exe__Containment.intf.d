examples/containment.mli:
