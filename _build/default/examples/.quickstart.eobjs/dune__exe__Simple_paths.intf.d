examples/simple_paths.mli:
