examples/alternation.ml: Alternating Circuit Cq Cq_naive Database Fo Fo_naive Format List Paradb Parser Reductions Relation String
