examples/alternation.mli:
