examples/salary.ml: Cq Format List Paradb_core Paradb_eval Paradb_graph Paradb_query Paradb_reductions Paradb_relational Parser Random
