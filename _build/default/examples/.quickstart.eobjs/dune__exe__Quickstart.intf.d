examples/quickstart.mli:
