examples/salary.mli:
