(* One problem, four guises — the clique problem as Theorem 1 sees it.

   The same parametric instance (G, k) appears as:
     1. a conjunctive query over the edge relation  (Theorem 1, lower bound);
     2. a weighted all-negative 2-CNF               (Theorem 1, upper bound);
     3. a clique instance again, via footnote 2      (round trip!);
     4. an acyclic query with < comparisons          (Theorem 3).

   Run with: dune exec examples/cliques.exe *)

module Graph = Paradb_graph.Graph
module Cnf = Paradb_wsat.Cnf
open Paradb_query
open Paradb_reductions

let () =
  let rng = Random.State.make [| 99 |] in
  let n = 9 in
  let g, planted = Graph.planted_clique rng n 0.25 4 in
  let k = 4 in
  Format.printf "graph: %d vertices, %d edges; planted 4-clique at {%s}@.@."
    (Graph.n_vertices g) (Graph.n_edges g)
    (String.concat ", " (List.map string_of_int planted));

  (* 0. ground truth by backtracking *)
  let truth = Graph.has_clique g k in
  Format.printf "0. backtracking search     : %b@." truth;

  (* 1. as a conjunctive query: P :- /\_{i<j} g(x_i, x_j) *)
  let q, db = Clique_to_cq.reduce g ~k in
  Format.printf "1. conjunctive query       : %b   (q = %d symbols, v = %d vars)@."
    (Paradb_eval.Cq_naive.is_satisfiable db q)
    (Cq.size q) (Cq.num_vars q);

  (* 2. decision problem -> weighted 2-CNF with k = #atoms *)
  let lab = Cq_to_wsat.reduce db q in
  let cnf = lab.Cq_to_wsat.cnf in
  Format.printf
    "2. weighted 2-CNF          : %b   (%d vars, %d clauses, target weight %d)@."
    (Cnf.weighted_sat_neg2cnf cnf lab.Cq_to_wsat.k <> None)
    cnf.Cnf.n_vars (Cnf.n_clauses cnf) lab.Cq_to_wsat.k;

  (* 3. footnote 2: union of CQs -> one clique instance *)
  let g2, k2 = Cqs_to_clique.reduce db [ q ] in
  Format.printf "3. clique again (footnote 2): %b  (%d vertices, target %d)@."
    (Graph.has_clique g2 k2) (Graph.n_vertices g2) k2;

  (* 4. Theorem 3: acyclic query with < comparisons *)
  let q3, db3 = Clique_to_comparisons.reduce g ~k in
  Format.printf "4. acyclic query with <    : %b   (%d atoms, database %d tuples)@."
    (Paradb_eval.Cq_naive.is_satisfiable db3 q3)
    (List.length q3.Cq.body)
    (Paradb_relational.Database.size db3);

  (* and a negative instance for contrast *)
  Format.printf "@.negative control (k = 6):@.";
  let q6, db6 = Clique_to_cq.reduce g ~k:6 in
  Format.printf "  6-clique by search: %b; by query: %b@."
    (Graph.has_clique g 6)
    (Paradb_eval.Cq_naive.is_satisfiable db6 q6)
