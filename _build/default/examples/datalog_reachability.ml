(* Datalog and the provable n^k lower bound (Section 4).

   Plain transitive closure is the friendly face of recursion; the
   product-graph family shows the other one: an IDB of arity k forces
   the bottom-up fixpoint through up to n^k tuples — query size only
   polynomial in k, but k lands in the exponent, which for recursive
   languages is *provable* (Vardi 1982), not just W-hierarchy-hard.

   Run with: dune exec examples/datalog_reachability.exe *)

module Relation = Paradb_relational.Relation
module Engine = Paradb_datalog.Engine
module Vardi = Paradb_workload.Vardi
open Paradb_query

let () =
  Format.printf "=== Transitive closure ===@.";
  let db = Parser.parse_facts "e(1, 2). e(2, 3). e(3, 4). e(4, 2)." in
  let tc =
    Parser.parse_program "tc(X, Y) :- e(X, Y). tc(X, Z) :- e(X, Y), tc(Y, Z)."
      ~goal:"tc"
  in
  let stats_naive = Engine.new_stats () in
  let r = Engine.evaluate ~strategy:Engine.Naive ~stats:stats_naive db tc in
  Format.printf "  closure has %d pairs (naive: %d rounds, %d derivations)@."
    (Relation.cardinality r) stats_naive.Engine.rounds stats_naive.Engine.derived;
  let stats_semi = Engine.new_stats () in
  let r2 = Engine.evaluate ~strategy:Engine.Seminaive ~stats:stats_semi db tc in
  Format.printf "  semi-naive agrees: %b (%d rounds, %d derivations)@.@."
    (Relation.set_equal r r2) stats_semi.Engine.rounds stats_semi.Engine.derived;

  Format.printf "=== The n^k family (k-pebble product reachability) ===@.";
  let rng = Random.State.make [| 1 |] in
  let layers = 5 and width = 4 in
  let db = Vardi.layered_instance rng ~layers ~width ~edge_prob:0.5 in
  Format.printf "  %d nodes, %d edges@." (layers * width)
    (Relation.cardinality (Paradb_relational.Database.find db "e"));
  List.iter
    (fun k ->
      let p = Vardi.program ~k in
      let stats = Engine.new_stats () in
      let holds = Engine.goal_holds ~stats db p in
      Format.printf
        "  k = %d: goal %b; IDB arity %d; %6d tuples derived, %d rounds@." k
        holds (Program.max_idb_arity p) stats.Engine.derived stats.Engine.rounds)
    [ 1; 2; 3 ];
  Format.printf
    "@.  (watch 'tuples derived' grow roughly like n^k while the program@.\
    \   itself grows only linearly in k: the exponent lives in the data.)@."
