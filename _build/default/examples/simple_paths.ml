(* Finding a simple path on k vertices by color coding — the
   Monien / Alon-Yuster-Zwick special case that Theorem 2 generalizes.

   The path query e(x1,x2), ..., e(x_{k-1},x_k) with all-pairs
   inequalities is acyclic; its I2 inequalities are the adjacent pairs
   and its I1 inequalities the rest, so the Theorem-2 engine literally
   color-codes the graph.

   Run with: dune exec examples/simple_paths.exe *)

module Graph = Paradb_graph.Graph
module Color_coding = Paradb_core.Color_coding
module Hashing = Paradb_core.Hashing
open Paradb_query

let () =
  let rng = Random.State.make [| 4 |] in
  let g, planted = Graph.planted_path rng 30 0.03 6 in
  Format.printf "graph: %d vertices, %d edges; planted a 6-path at [%s]@.@."
    (Graph.n_vertices g) (Graph.n_edges g)
    (String.concat "; " (List.map string_of_int planted));

  (* the query behind the scenes *)
  let q = Color_coding.path_query ~k:4 in
  Format.printf "the k=4 path query: %a@." Cq.pp q;
  let part = Paradb_core.Ineq.partition q in
  Format.printf "its partition: %a@.@." Paradb_core.Ineq.pp part;

  (* decision + witness for growing k *)
  List.iter
    (fun k ->
      match Color_coding.find_simple_path g k with
      | Some p ->
          Format.printf "k = %d: found  [%s]@." k
            (String.concat "; " (List.map string_of_int p))
      | None -> Format.printf "k = %d: none@." k)
    [ 2; 4; 6 ];

  (* randomized driver: success probability per coloring is >= e^-k *)
  Format.printf "@.randomized colorings for k = 6 (paper: >= e^-6 each):@.";
  let k = 6 in
  List.iter
    (fun trials ->
      let family = Hashing.Random_trials { trials; seed = 1 } in
      Format.printf "  %4d trials -> found: %b@." trials
        (Color_coding.has_simple_path ~family g k))
    [ 1; 10; 100; Hashing.default_trials ~c:3.0 ~k ];

  (* compare against plain backtracking *)
  let agree = Color_coding.has_simple_path g 6 = Graph.has_simple_path g 6 in
  Format.printf "@.agrees with backtracking search: %b@." agree
