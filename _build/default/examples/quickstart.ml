(* Quickstart: build a database, parse queries, and run each engine.

   Run with: dune exec examples/quickstart.exe *)

module Relation = Paradb_relational.Relation
module Engine = Paradb_core.Engine
open Paradb_query

let () =
  (* 1. A database, written as Datalog-style facts. *)
  let db =
    Parser.parse_facts
      {|
        % a small social/follows graph
        follows(ada, bob).    follows(bob, cem).
        follows(cem, dora).   follows(ada, cem).
        follows(dora, dora).
      |}
  in

  (* 2. A plain conjunctive query: who reaches whom in two hops? *)
  let two_hops = Parser.parse_cq "ans(X, Z) :- follows(X, Y), follows(Y, Z)." in
  let naive = Paradb_eval.Cq_naive.evaluate db two_hops in
  Format.printf "two hops (naive backtracking):@.%a@.@." Relation.pp naive;

  (* The query is acyclic, so Yannakakis' algorithm applies. *)
  let yann = Paradb_yannakakis.Yannakakis.evaluate db two_hops in
  Format.printf "same result via Yannakakis: %b@.@." (Relation.set_equal naive yann);

  (* 3. The paper's extension: acyclic queries plus inequalities.  "Who
     reaches, in two hops, someone other than themselves?"  X != Z is an
     I1 inequality (X and Z never share an atom): this is exactly the
     class Theorem 2 makes fixed-parameter tractable. *)
  let proper = Parser.parse_cq "ans(X, Z) :- follows(X, Y), follows(Y, Z), X != Z." in
  let fpt = Engine.evaluate db proper in
  Format.printf "proper two-hop pairs (Theorem 2 engine):@.%a@.@." Relation.pp fpt;

  (* 4. The engine agrees with brute force, and reports its work. *)
  let stats = Engine.new_stats () in
  let sat = Engine.is_satisfiable ~stats db proper in
  Format.printf "satisfiable: %b (tried %d colorings, %d succeeded)@.@." sat
    stats.Engine.trials stats.Engine.successes;

  (* 5. The randomized driver from the paper: c * e^k random colorings. *)
  let k = 2 (* |V1| = |{X, Z}| *) in
  let trials = Paradb_core.Hashing.default_trials ~c:3.0 ~k in
  let family = Paradb_core.Hashing.Random_trials { trials; seed = 42 } in
  Format.printf "randomized (%d trials): %b@." trials
    (Engine.is_satisfiable ~family db proper)
