(* Chandra–Merlin containment and minimization — the 1977 starting point
   the paper's introduction names ("ever since the paper by Chandra and
   Merlin"), and the reason conjunctive-query *static analysis* has the
   same parametric flavor as evaluation: deciding Q1 ⊆ Q2 is clique-hard
   in |Q2| exactly like Theorem 1's evaluation problem.

   Run with: dune exec examples/containment.exe *)

open Paradb

let cq = Parser.parse_cq

let show_containment q1 q2 =
  Format.printf "  %-38s ⊆ %-28s : %b@." (Cq.to_string q1) (Cq.to_string q2)
    (Containment.contained q1 q2)

let () =
  Format.printf "=== Containment (homomorphisms into the frozen query) ===@.";
  let path2 = cq "ans(X) :- e(X, Y), e(Y, Z)." in
  let edge = cq "ans(X) :- e(X, Y)." in
  let tri = cq "ans(X) :- e(X, Y), e(Y, Z), e(Z, X)." in
  show_containment path2 edge;
  show_containment edge path2;
  show_containment tri path2;
  show_containment path2 tri;

  Format.printf "@.=== The witnessing homomorphism ===@.";
  (match Containment.homomorphism path2 edge with
  | Some hom -> Format.printf "  edge -> frozen(path2): %a@." Binding.pp hom
  | None -> Format.printf "  none@.");

  Format.printf "@.=== Minimization (cores) ===@.";
  List.iter
    (fun text ->
      let q = cq text in
      let m = Containment.minimize q in
      Format.printf "  %-48s ->  %s@." (Cq.to_string q) (Cq.to_string m))
    [
      "ans(X) :- e(X, Y), e(X, Z).";
      "ans(X) :- e(X, Y), e(Y, Z), e(X, U), e(U, V).";
      "g() :- e(X, X), e(Y, Z), e(Z, Y).";
      "ans(Y, Z) :- e(X, Y), e(X, Z).";
    ];

  Format.printf
    "@.=== Why this is the same hardness story as Theorem 1 ===@.";
  (* Q1 ⊆ Q2 where Q2 is the k-clique query asks exactly whether Q1's
     canonical database contains a k-clique. *)
  let rng = Random.State.make [| 3 |] in
  let g, _ = Graph.planted_clique rng 8 0.3 4 in
  let clique_q, db = Reductions.Clique_to_cq.reduce g ~k:4 in
  (* a Boolean query whose canonical database is exactly g *)
  let graph_q =
    Cq.make ~name:"p" ~head:[]
      (List.map
         (fun row ->
           Atom.make "g"
             [ Term.var ("v" ^ Value.to_string row.(0));
               Term.var ("v" ^ Value.to_string row.(1)) ])
         (Relation.tuples (Database.find db "g")))
  in
  Format.printf "  graph-as-query has %d atoms; clique query has %d@."
    (List.length graph_q.Cq.body)
    (List.length clique_q.Cq.body);
  Format.printf "  graph-query ⊆ clique-query : %b (graph has a 4-clique: %b)@."
    (Containment.contained graph_q clique_q)
    (Graph.has_clique g 4)
