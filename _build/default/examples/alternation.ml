(* Alternating quantification and the schema axis — the Section-4 side
   roads, driven through the umbrella [Paradb] module.

   1. A two-player game on a circuit (AW semantics) becomes a first-order
      query with a ∃/∀ prefix over the wiring relation.
   2. Any prenex FO sentence becomes an alternating weighted-formula
      game with one weight-1 block per quantifier.
   3. Figure 1's schema axis: every instance re-encodes over the fixed
      tup/cell schema without changing the answer.

   Run with: dune exec examples/alternation.exe *)

open Paradb

let () =
  Format.printf "=== 1. circuit game -> FO query (AW[P] hardness) ===@.";
  (* (x0 | x1) & (x2 | x3): whoever owns a whole OR leg decides it *)
  let c =
    Circuit.make ~n_inputs:4
      [|
        Circuit.G_input 0; Circuit.G_input 1; Circuit.G_input 2;
        Circuit.G_input 3; Circuit.G_or [ 0; 1 ]; Circuit.G_or [ 2; 3 ];
        Circuit.G_and [ 4; 5 ];
      |]
      ~output:6
  in
  let game quantifiers =
    List.mapi
      (fun i q ->
        { Alternating.quantifier = q; vars = [ 2 * i; (2 * i) + 1 ]; weight = 1 })
      quantifiers
  in
  List.iter
    (fun (label, blocks) ->
      let expected = Alternating.holds_circuit c blocks in
      let fo, db = Reductions.Alternating_to_fo.reduce c blocks in
      Format.printf
        "  %s: game value %b; FO query (size %d, %d vars) agrees: %b@." label
        expected (Fo.size fo) (Fo.num_vars fo)
        (Fo_naive.sentence_holds db fo = expected)
    )
    [
      (* exists picks one leg, forall starves... each block controls one OR *)
      ("E{x0,x1} A{x2,x3}", game [ Alternating.Q_exists; Alternating.Q_forall ]);
      ("A{x0,x1} E{x2,x3}", game [ Alternating.Q_forall; Alternating.Q_exists ]);
      ("E E", game [ Alternating.Q_exists; Alternating.Q_exists ]);
    ];

  Format.printf "@.=== 2. prenex FO -> alternating weighted formula ===@.";
  let db = Parser.parse_facts "e(1, 2). e(2, 3). e(3, 1). u(2)." in
  List.iter
    (fun text ->
      let f = Parser.parse_fo text in
      let lab = Reductions.Fo_to_awsat.reduce db f in
      Format.printf "  %-45s -> %d blocks, %d booleans; agrees: %b@." text
        (List.length lab.Reductions.Fo_to_awsat.blocks)
        lab.Reductions.Fo_to_awsat.n_vars
        (Reductions.Fo_to_awsat.holds lab = Fo_naive.sentence_holds db f))
    [
      "forall X. exists Y. e(X, Y)";
      "exists X. forall Y. (e(Y, X) -> u(Y))";
      "forall X Y. (e(X, Y) -> exists Z. e(Y, Z))";
    ];

  Format.printf "@.=== 3. the schema axis (Figure 1) ===@.";
  let q = Parser.parse_cq "ans(X) :- e(X, Y), u(Y), X != Y." in
  let q', db' = Reductions.Fixed_schema.reduce db q in
  Format.printf "  original : %a@." Cq.pp q;
  Format.printf "  rewritten: %a@." Cq.pp q';
  Format.printf "  fixed-schema relations: %s@."
    (String.concat ", " (Database.names db'));
  let same =
    Relation.set_equal (Cq_naive.evaluate db q) (Cq_naive.evaluate db' q')
  in
  Format.printf "  same answers over tup/cell: %b@." same
