(* The paper's own motivating examples (Section 5):

     "Find the employees that work on more than one project:
        G(e) :- EP(e,p), EP(e,p'), p != p'"
     "Find the students that take courses outside their department:
        G(s) :- SD(s,d), SC(s,c), CD(c,d'), d != d'"

   Both queries are acyclic once the inequality edges are left out of the
   hypergraph, so the Theorem-2 engine evaluates them in f.p. polynomial
   time; this example also shows the naive evaluator agreeing, and the
   I1/I2 partition each query induces.

   Run with: dune exec examples/employees.exe *)

module Relation = Paradb_relational.Relation
module Engine = Paradb_core.Engine
module Ineq = Paradb_core.Ineq
open Paradb_query

let show_inequality_partition q =
  let part = Ineq.partition q in
  Format.printf "  partition: %a@." Ineq.pp part

let () =
  let rng = Random.State.make [| 2026 |] in

  Format.printf "=== Employees on more than one project ===@.";
  let db, q =
    Paradb_workload.Generators.employees_multi_project rng ~employees:12
      ~projects:4 ~assignments:20
  in
  Format.printf "  query: %a@." Cq.pp q;
  show_inequality_partition q;
  let result = Engine.evaluate db q in
  Format.printf "  multi-project employees: %d of 12@." (Relation.cardinality result);
  Relation.iter (fun row -> Format.printf "    %a@." Paradb_relational.Tuple.pp row) result;
  let naive = Paradb_eval.Cq_naive.evaluate db q in
  Format.printf "  agrees with naive evaluation: %b@.@."
    (Relation.set_equal result naive);

  Format.printf "=== Students taking courses outside their department ===@.";
  let db2, q2 =
    Paradb_workload.Generators.students_outside_department rng ~students:10
      ~courses:8 ~departments:3 ~enrollments:18
  in
  Format.printf "  query: %a@." Cq.pp q2;
  show_inequality_partition q2;
  let result2 = Engine.evaluate db2 q2 in
  Format.printf "  students found: %d of 10@." (Relation.cardinality result2);
  Format.printf "  agrees with naive evaluation: %b@.@."
    (Relation.set_equal result2 (Paradb_eval.Cq_naive.evaluate db2 q2));

  (* The same query written in the concrete syntax, on a hand-made
     database, with the decision problem. *)
  Format.printf "=== Hand-written instance, decision problem ===@.";
  let db3 =
    Parser.parse_facts
      "ep(ada, compilers). ep(ada, planners). ep(bob, compilers). ep(cem, planners)."
  in
  let q3 = Parser.parse_cq "g(E) :- ep(E, P), ep(E, P2), P != P2." in
  List.iter
    (fun name ->
      Format.printf "  is %s on more than one project? %b@." name
        (Engine.decide db3 q3 [| Paradb_relational.Value.Str name |]))
    [ "ada"; "bob"; "cem" ]
