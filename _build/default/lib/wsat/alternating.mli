(** Alternating weighted satisfiability — the complete problems of the
    AW classes (Abrahamson–Downey–Fellows) that Section 4 uses to
    classify first-order queries under alternation.

    The input variables are partitioned into blocks [V_1, ..., V_r];
    block [i] carries a quantifier and a weight [k_i].  The question:

    [Q_1 S_1 ⊆ V_1 (|S_1| = k_1). Q_2 S_2 ⊆ V_2 (|S_2| = k_2). ...]
    such that the circuit/formula accepts the input that sets exactly
    [∪ S_i] true (variables outside every block are false).

    The parameter is [Σ k_i].  With unrestricted circuits this is
    AW[P]; with formulas, AW[SAT]. *)

type quantifier =
  | Q_exists
  | Q_forall

type block = {
  quantifier : quantifier;
  vars : int list;
  weight : int;
}

(** Disjointness, ranges and weights; raises [Invalid_argument]. *)
val validate : n_vars:int -> block list -> unit

val parameter : block list -> int

(** Brute-force game evaluation (enumerates [C(|V_i|, k_i)] subsets per
    level). *)
val holds : n_vars:int -> eval:(bool array -> bool) -> block list -> bool

val holds_circuit : Circuit.t -> block list -> bool
val holds_formula : ?n_vars:int -> Formula.t -> block list -> bool

(** All weight-[k] subsets of a list, as sorted index lists. *)
val subsets : int list -> int -> int list Seq.t
