type t =
  | F_const of bool
  | F_var of int
  | F_not of t
  | F_and of t list
  | F_or of t list

let var i = F_var i
let neg f = F_not f

let conj = function
  | [] -> F_const true
  | [ f ] -> f
  | fs -> F_and fs

let disj = function
  | [] -> F_const false
  | [ f ] -> f
  | fs -> F_or fs

let rec max_var = function
  | F_const _ -> -1
  | F_var i -> i
  | F_not f -> max_var f
  | F_and fs | F_or fs -> List.fold_left (fun acc f -> max acc (max_var f)) (-1) fs

let n_vars f = 1 + max_var f

let rec size = function
  | F_const _ | F_var _ -> 1
  | F_not f -> 1 + size f
  | F_and fs | F_or fs -> 1 + List.fold_left (fun acc f -> acc + size f) 0 fs

let rec eval f a =
  match f with
  | F_const b -> b
  | F_var i -> a.(i)
  | F_not g -> not (eval g a)
  | F_and gs -> List.for_all (fun g -> eval g a) gs
  | F_or gs -> List.exists (fun g -> eval g a) gs

let rec is_monotone = function
  | F_const _ | F_var _ -> true
  | F_not _ -> false
  | F_and fs | F_or fs -> List.for_all is_monotone fs

let rec nnf = function
  | (F_const _ | F_var _) as f -> f
  | F_and fs -> F_and (List.map nnf fs)
  | F_or fs -> F_or (List.map nnf fs)
  | F_not f -> (
      match f with
      | F_const b -> F_const (not b)
      | F_var _ -> F_not f
      | F_not g -> nnf g
      | F_and fs -> F_or (List.map (fun g -> nnf (F_not g)) fs)
      | F_or fs -> F_and (List.map (fun g -> nnf (F_not g)) fs))

let occurrences f =
  let rec go acc = function
    | F_const _ -> acc
    | F_var i -> (i, true) :: acc
    | F_not (F_var i) -> (i, false) :: acc
    | F_not g -> go acc (nnf (F_not g))
    | F_and fs | F_or fs -> List.fold_left go acc fs
  in
  List.rev (go [] (nnf f))

let to_circuit ?n_vars:universe f =
  let gates = ref [] in
  let count = ref 0 in
  let emit g =
    gates := g :: !gates;
    let id = !count in
    incr count;
    id
  in
  let n = max (n_vars f) (Option.value universe ~default:0) in
  (* Emit one input gate per variable up front so sharing is possible. *)
  let input_ids = Array.init n (fun i -> emit (Circuit.G_input i)) in
  let rec go = function
    | F_const b -> emit (Circuit.G_const b)
    | F_var i -> input_ids.(i)
    | F_not g -> emit (Circuit.G_not (go g))
    | F_and gs -> emit (Circuit.G_and (List.map go gs))
    | F_or gs -> emit (Circuit.G_or (List.map go gs))
  in
  let output = go f in
  Circuit.make ~n_inputs:n (Array.of_list (List.rev !gates)) ~output

let weighted_sat ?n_vars:universe f k =
  let n = max (n_vars f) (Option.value universe ~default:0) in
  Seq.find (fun a -> eval f a) (Circuit.weight_k_assignments n k)

let weighted_sat_exists ?n_vars f k = weighted_sat ?n_vars f k <> None

let random rng ~n_vars ~depth =
  let rec go depth =
    if depth <= 0 || Random.State.int rng 4 = 0 then
      let v = F_var (Random.State.int rng n_vars) in
      if Random.State.bool rng then v else F_not v
    else
      let width = 2 + Random.State.int rng 2 in
      let subs = List.init width (fun _ -> go (depth - 1)) in
      if Random.State.bool rng then F_and subs else F_or subs
  in
  go depth

let rec pp ppf = function
  | F_const b -> Format.pp_print_bool ppf b
  | F_var i -> Format.fprintf ppf "x%d" i
  | F_not f -> Format.fprintf ppf "!%a" pp_delim f
  | F_and fs ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " & ")
           pp)
        fs
  | F_or fs ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " | ")
           pp)
        fs

and pp_delim ppf f =
  match f with
  | F_const _ | F_var _ | F_not _ -> pp ppf f
  | _ -> Format.fprintf ppf "(%a)" pp f
