type gate =
  | G_input of int
  | G_const of bool
  | G_and of int list
  | G_or of int list
  | G_not of int

type t = { n_inputs : int; gates : gate array; output : int }

let make ~n_inputs gates ~output =
  let n = Array.length gates in
  if output < 0 || output >= n then invalid_arg "Circuit.make: bad output id";
  Array.iteri
    (fun id gate ->
      let check_ref j =
        if j < 0 || j >= id then
          invalid_arg
            (Printf.sprintf
               "Circuit.make: gate %d references %d (not topologically \
                ordered)"
               id j)
      in
      match gate with
      | G_input i ->
          if i < 0 || i >= n_inputs then
            invalid_arg "Circuit.make: input index out of range"
      | G_const _ -> ()
      | G_and js | G_or js -> List.iter check_ref js
      | G_not j -> check_ref j)
    gates;
  { n_inputs; gates; output }

let n_gates t = Array.length t.gates

let eval t input =
  if Array.length input <> t.n_inputs then
    invalid_arg "Circuit.eval: wrong input length";
  let value = Array.make (n_gates t) false in
  Array.iteri
    (fun id gate ->
      value.(id) <-
        (match gate with
        | G_input i -> input.(i)
        | G_const b -> b
        | G_and js -> List.for_all (fun j -> value.(j)) js
        | G_or js -> List.exists (fun j -> value.(j)) js
        | G_not j -> not value.(j)))
    t.gates;
  value.(t.output)

let is_monotone t =
  Array.for_all
    (function G_not _ -> false | G_input _ | G_const _ | G_and _ | G_or _ -> true)
    t.gates

let levels t =
  let level = Array.make (n_gates t) 0 in
  Array.iteri
    (fun id gate ->
      level.(id) <-
        (match gate with
        | G_input _ | G_const _ -> 0
        | G_and js | G_or js ->
            1 + List.fold_left (fun acc j -> max acc level.(j)) 0 js
        | G_not j -> 1 + level.(j)))
    t.gates;
  level

let depth t =
  (* Depth does not count NOT gates applied directly to inputs. *)
  let d = Array.make (n_gates t) 0 in
  Array.iteri
    (fun id gate ->
      d.(id) <-
        (match gate with
        | G_input _ | G_const _ -> 0
        | G_and js | G_or js ->
            1 + List.fold_left (fun acc j -> max acc d.(j)) 0 js
        | G_not j -> (
            match t.gates.(j) with
            | G_input _ -> 0
            | G_const _ | G_and _ | G_or _ | G_not _ -> 1 + d.(j))))
    t.gates;
  d.(t.output)

(* Enumerate all weight-k 0/1 assignments of n variables, lazily, in
   lexicographic order of the chosen index sets. *)
let weight_k_assignments n k : bool array Seq.t =
  if k < 0 || k > n then Seq.empty
  else if k = 0 then Seq.return (Array.make n false)
  else
    let rec choose start need : int list Seq.t =
     fun () ->
      if need = 0 then Seq.Cons ([], Seq.empty)
      else if start > n - need then Seq.Nil
      else
        Seq.append
          (Seq.map (fun rest -> start :: rest) (choose (start + 1) (need - 1)))
          (choose (start + 1) need)
          ()
    in
    Seq.map
      (fun idxs ->
        let a = Array.make n false in
        List.iter (fun i -> a.(i) <- true) idxs;
        a)
      (choose 0 k)

let weighted_sat t k =
  Seq.find (eval t) (weight_k_assignments t.n_inputs k)

let weighted_sat_exists t k = weighted_sat t k <> None

let pp ppf t =
  Format.fprintf ppf "@[<v>circuit(%d inputs, %d gates, out %d)" t.n_inputs
    (n_gates t) t.output;
  Array.iteri
    (fun id gate ->
      let s =
        match gate with
        | G_input i -> Printf.sprintf "x%d" i
        | G_const b -> string_of_bool b
        | G_and js ->
            "AND(" ^ String.concat "," (List.map string_of_int js) ^ ")"
        | G_or js ->
            "OR(" ^ String.concat "," (List.map string_of_int js) ^ ")"
        | G_not j -> Printf.sprintf "NOT(%d)" j
      in
      Format.fprintf ppf "@,  g%d = %s" id s)
    t.gates;
  Format.fprintf ppf "@]"
