type quantifier =
  | Q_exists
  | Q_forall

type block = {
  quantifier : quantifier;
  vars : int list;
  weight : int;
}

let validate ~n_vars blocks =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun b ->
      if b.weight < 0 || b.weight > List.length b.vars then
        invalid_arg "Alternating: block weight out of range";
      List.iter
        (fun v ->
          if v < 0 || v >= n_vars then
            invalid_arg "Alternating: variable out of range";
          if Hashtbl.mem seen v then
            invalid_arg "Alternating: blocks are not disjoint";
          Hashtbl.add seen v ())
        b.vars)
    blocks

let parameter blocks = List.fold_left (fun acc b -> acc + b.weight) 0 blocks

let subsets vars k : int list Seq.t =
  let arr = Array.of_list vars in
  let n = Array.length arr in
  let rec choose start need : int list Seq.t =
   fun () ->
    if need = 0 then Seq.Cons ([], Seq.empty)
    else if start > n - need then Seq.Nil
    else
      Seq.append
        (Seq.map (fun rest -> arr.(start) :: rest) (choose (start + 1) (need - 1)))
        (choose (start + 1) need)
        ()
  in
  choose 0 k

let holds ~n_vars ~eval blocks =
  validate ~n_vars blocks;
  let assignment = Array.make n_vars false in
  let rec game = function
    | [] -> eval assignment
    | b :: rest ->
        let try_subset subset =
          List.iter (fun v -> assignment.(v) <- true) subset;
          let result = game rest in
          List.iter (fun v -> assignment.(v) <- false) subset;
          result
        in
        let choices = subsets b.vars b.weight in
        (match b.quantifier with
        | Q_exists -> Seq.exists try_subset choices
        | Q_forall -> Seq.for_all try_subset choices)
  in
  game blocks

let holds_circuit c blocks =
  holds ~n_vars:c.Circuit.n_inputs ~eval:(Circuit.eval c) blocks

let holds_formula ?n_vars f blocks =
  let n = max (Formula.n_vars f) (Option.value n_vars ~default:0) in
  holds ~n_vars:n ~eval:(Formula.eval f) blocks
