(** CNF formulas.  Depth-1 weighted satisfiability in the W hierarchy is
    weighted 3-CNF satisfiability; Theorem 1's conjunctive-query upper
    bound produces weighted *2-CNF with all-negative clauses* — captured
    here together with its structural predicates. *)

type literal = { var : int; positive : bool }
type clause = literal list
type t = { n_vars : int; clauses : clause list }

val make : n_vars:int -> clause list -> t
val pos : int -> literal
val neg : int -> literal
val eval : t -> bool array -> bool
val is_2cnf : t -> bool
val is_3cnf : t -> bool

(** Every literal negative — the shape produced by the CQ reduction. *)
val all_negative : t -> bool

val n_clauses : t -> int
val to_formula : t -> Formula.t

(** Brute-force weight-[k] satisfiability by enumerating weight-[k]
    assignments. *)
val weighted_sat : t -> int -> bool array option

val weighted_sat_exists : t -> int -> bool

(** For an all-negative CNF, a weight-[k] satisfying assignment is an
    independent set of size [k] in the conflict graph (vertices =
    variables, an edge for each 2-clause), i.e., a clique in its
    complement — footnote 2's bridge from queries to [clique].  Raises
    [Invalid_argument] unless [all_negative] and [is_2cnf] hold. *)
val conflict_graph : t -> Paradb_graph.Graph.t

(** Weight-[k] satisfiability of an all-negative 2-CNF via clique search
    in the complement of the conflict graph (much faster than enumeration
    when [k] is small). *)
val weighted_sat_neg2cnf : t -> int -> bool array option

val pp : Format.formatter -> t -> unit
