(** Boolean formulas (fan-out-1 circuits).  Weighted formula
    satisfiability is the complete problem for W[SAT]; Theorem 1 reduces
    it to positive-query evaluation under the variable parameter. *)

type t =
  | F_const of bool
  | F_var of int
  | F_not of t
  | F_and of t list
  | F_or of t list

val var : int -> t
val neg : t -> t
val conj : t list -> t
val disj : t list -> t
val n_vars : t -> int

(** Count of atomic occurrences plus connectives (a size measure). *)
val size : t -> int

val eval : t -> bool array -> bool
val is_monotone : t -> bool

(** Negation normal form: negations pushed onto variables. *)
val nnf : t -> t

(** Positive and negative variable occurrences (after NNF), as
    [(var, positive)] pairs in formula order — the "occurrences" replaced
    one by one in Theorem 1's W[SAT] reduction. *)
val occurrences : t -> (int * bool) list

(** [n_vars] widens the circuit's input universe beyond the formula's own
    maximum variable index. *)
val to_circuit : ?n_vars:int -> t -> Circuit.t

(** Brute-force weight-[k] satisfiability.  [n_vars] widens the variable
    universe beyond the formula's own maximum index (weight is counted
    over the whole universe). *)
val weighted_sat : ?n_vars:int -> t -> int -> bool array option

val weighted_sat_exists : ?n_vars:int -> t -> int -> bool

(** Random formula on [n_vars] variables with the given connective depth
    (for property tests). *)
val random : Random.State.t -> n_vars:int -> depth:int -> t

val pp : Format.formatter -> t -> unit
