type literal = { var : int; positive : bool }
type clause = literal list
type t = { n_vars : int; clauses : clause list }

let make ~n_vars clauses =
  List.iter
    (fun clause ->
      List.iter
        (fun lit ->
          if lit.var < 0 || lit.var >= n_vars then
            invalid_arg "Cnf.make: variable out of range")
        clause)
    clauses;
  { n_vars; clauses }

let pos var = { var; positive = true }
let neg var = { var; positive = false }

let eval_literal a lit = if lit.positive then a.(lit.var) else not a.(lit.var)

let eval t a =
  List.for_all (fun clause -> List.exists (eval_literal a) clause) t.clauses

let is_2cnf t = List.for_all (fun c -> List.length c <= 2) t.clauses
let is_3cnf t = List.for_all (fun c -> List.length c <= 3) t.clauses

let all_negative t =
  List.for_all (List.for_all (fun lit -> not lit.positive)) t.clauses

let n_clauses t = List.length t.clauses

let to_formula t =
  Formula.conj
    (List.map
       (fun clause ->
         Formula.disj
           (List.map
              (fun lit ->
                let v = Formula.var lit.var in
                if lit.positive then v else Formula.neg v)
              clause))
       t.clauses)

let weighted_sat t k =
  Seq.find (eval t) (Circuit.weight_k_assignments t.n_vars k)

let weighted_sat_exists t k = weighted_sat t k <> None

let conflict_graph t =
  if not (all_negative t && is_2cnf t) then
    invalid_arg "Cnf.conflict_graph: requires an all-negative 2-CNF";
  let g = Paradb_graph.Graph.create t.n_vars in
  List.iter
    (fun clause ->
      match clause with
      | [ a; b ] -> Paradb_graph.Graph.add_edge g a.var b.var
      | [ a ] ->
          (* Unit negative clause: the variable can never be true; a
             self-loop marks it as conflicting with itself. *)
          Paradb_graph.Graph.add_edge g a.var a.var
      | [] -> ()
      | _ -> assert false)
    t.clauses;
  g

let weighted_sat_neg2cnf t k =
  let conflicts = conflict_graph t in
  let self_ok v = not (Paradb_graph.Graph.has_edge conflicts v v) in
  if k = 0 then
    if eval t (Array.make t.n_vars false) then Some (Array.make t.n_vars false)
    else None
  else if k = 1 then begin
    let rec try_var v =
      if v >= t.n_vars then None
      else if self_ok v then begin
        let a = Array.make t.n_vars false in
        a.(v) <- true;
        Some a
      end
      else try_var (v + 1)
    in
    try_var 0
  end
  else begin
    (* Complement of the conflict graph, restricted to variables that do
       not conflict with themselves; a weight-k satisfying assignment is a
       k-clique there. *)
    let g = Paradb_graph.Graph.create t.n_vars in
    for u = 0 to t.n_vars - 1 do
      for v = u + 1 to t.n_vars - 1 do
        if (not (Paradb_graph.Graph.has_edge conflicts u v)) && self_ok u
           && self_ok v
        then Paradb_graph.Graph.add_edge g u v
      done
    done;
    match Paradb_graph.Graph.find_clique g k with
    | None -> None
    | Some vs ->
        let a = Array.make t.n_vars false in
        List.iter (fun v -> a.(v) <- true) vs;
        Some a
  end

let pp_literal ppf lit =
  Format.fprintf ppf "%sx%d" (if lit.positive then "" else "!") lit.var

let pp ppf t =
  Format.fprintf ppf "cnf(%d vars): " t.n_vars;
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " & ")
    (fun ppf clause ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " | ")
           pp_literal)
        clause)
    ppf t.clauses
