(** Boolean circuits with unbounded fan-in/fan-out AND, OR and NOT gates —
    the machine model underlying the W hierarchy (Section 2).

    Gates are stored in topological order: a gate may only reference
    strictly smaller gate ids.  Inputs are gates too ([G_input i] reads
    input variable [i]). *)

type gate =
  | G_input of int
  | G_const of bool
  | G_and of int list
  | G_or of int list
  | G_not of int

type t = private { n_inputs : int; gates : gate array; output : int }

(** Validates gate references (topological order, ranges) or raises
    [Invalid_argument]. *)
val make : n_inputs:int -> gate array -> output:int -> t

val n_gates : t -> int
val eval : t -> bool array -> bool

(** No NOT gates anywhere. *)
val is_monotone : t -> bool

(** Longest input→output path, counting AND/OR gates and internal NOT
    gates but — per the paper's convention — not NOT gates applied
    directly to inputs. *)
val depth : t -> int

(** [alternates t] — along every path, OR and AND gates strictly
    alternate with an OR gate at the output, and all inputs feed (or are)
    the bottom level; the form Theorem 1's first-order reduction assumes
    (after normalization). *)
val levels : t -> int array
(** [levels t] assigns each gate its level: inputs at 0, any other gate at
    1 + max over fan-in. *)

(** [weighted_sat t k] — a satisfying input with exactly [k] ones, found
    by enumerating all weight-[k] assignments (the [O(n^k)] brute force
    that defines the difficulty of the problem).  Returns the assignment
    or [None]. *)
val weighted_sat : t -> int -> bool array option

val weighted_sat_exists : t -> int -> bool

(** All weight-[k] assignments, as a sequence (shared by the solvers and
    the benchmarks). *)
val weight_k_assignments : int -> int -> bool array Seq.t

val pp : Format.formatter -> t -> unit
