lib/wsat/formula.ml: Array Circuit Format List Option Random Seq
