lib/wsat/formula.mli: Circuit Format Random
