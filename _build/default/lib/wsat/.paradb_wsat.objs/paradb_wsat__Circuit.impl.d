lib/wsat/circuit.ml: Array Format List Printf Seq String
