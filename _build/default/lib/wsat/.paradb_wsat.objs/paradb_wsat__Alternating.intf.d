lib/wsat/alternating.mli: Circuit Formula Seq
