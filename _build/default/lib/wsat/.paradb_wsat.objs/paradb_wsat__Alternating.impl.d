lib/wsat/alternating.ml: Array Circuit Formula Hashtbl List Option Seq
