lib/wsat/cnf.ml: Array Circuit Format Formula List Paradb_graph Seq
