lib/wsat/circuit.mli: Format Seq
