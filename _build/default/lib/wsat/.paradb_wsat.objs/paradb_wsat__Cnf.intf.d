lib/wsat/cnf.mli: Format Formula Paradb_graph
