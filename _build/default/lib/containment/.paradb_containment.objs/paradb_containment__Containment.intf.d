lib/containment/containment.mli: Paradb_query Paradb_relational
