lib/containment/containment.ml: Array Atom Cq Hashtbl List Paradb_eval Paradb_query Paradb_relational Printf Term
