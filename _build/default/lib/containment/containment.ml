module Database = Paradb_relational.Database
module Relation = Paradb_relational.Relation
module Tuple = Paradb_relational.Tuple
module Value = Paradb_relational.Value
open Paradb_query

let reject_constraints q =
  if Cq.has_constraints q then
    invalid_arg "Containment: constraint atoms are not supported"

(* Freeze a variable to a distinguished constant.  '$' cannot start a
   parsed identifier, so frozen constants cannot collide with the
   constants of reasonable queries. *)
let freeze_term = function
  | Term.Var x -> Value.Str ("$" ^ x)
  | Term.Const v -> v

let canonical_database q =
  reject_constraints q;
  let table : (string, Tuple.t list ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun a ->
      let row = Array.of_list (List.map freeze_term a.Atom.args) in
      match Hashtbl.find_opt table a.Atom.rel with
      | Some rows -> rows := row :: !rows
      | None -> Hashtbl.add table a.Atom.rel (ref [ row ]))
    q.Cq.body;
  let db =
    Hashtbl.fold
      (fun name rows db ->
        let arity =
          match !rows with
          | row :: _ -> Array.length row
          | [] -> 0
        in
        Database.add
          (Relation.create ~name
             ~schema:(List.init arity (Printf.sprintf "a%d"))
             !rows)
          db)
      table Database.empty
  in
  (db, Array.of_list (List.map freeze_term q.Cq.head))

(* Make sure every relation the probing query mentions exists (possibly
   empty) in the target database. *)
let pad_relations db q =
  List.fold_left
    (fun db a ->
      if Database.mem db a.Atom.rel then db
      else
        Database.add
          (Relation.create ~name:a.Atom.rel
             ~schema:(List.init (Atom.arity a) (Printf.sprintf "a%d"))
             [])
          db)
    db q.Cq.body

let homomorphism q1 q2 =
  reject_constraints q1;
  reject_constraints q2;
  if List.length q1.Cq.head <> List.length q2.Cq.head then None
  else begin
    let db, frozen_head = canonical_database q1 in
    let db = pad_relations db q2 in
    match Cq.close_with_tuple q2 frozen_head with
    | None -> None
    | Some closed -> (
        match Paradb_eval.Cq_naive.all_bindings db closed with
        | binding :: _ -> Some binding
        | [] -> None)
  end

let contained q1 q2 = homomorphism q1 q2 <> None
let equivalent q1 q2 = contained q1 q2 && contained q2 q1

let minimize q =
  reject_constraints q;
  let removable body atom =
    let rest = List.filter (fun a -> a != atom) body in
    let head_vars = Term.vars q.Cq.head in
    let rest_vars = List.concat_map Atom.vars rest in
    rest <> []
    && List.for_all (fun x -> List.mem x rest_vars) head_vars
    &&
    (* dropping an atom only weakens the query, so equivalence holds iff
       the smaller query is still contained in the original *)
    let candidate = Cq.make ~name:q.Cq.name ~head:q.Cq.head rest in
    contained candidate (Cq.make ~name:q.Cq.name ~head:q.Cq.head body)
  in
  let rec shrink body =
    match List.find_opt (removable body) body with
    | Some atom -> shrink (List.filter (fun a -> a != atom) body)
    | None -> body
  in
  Cq.make ~name:q.Cq.name ~head:q.Cq.head (shrink q.Cq.body)
