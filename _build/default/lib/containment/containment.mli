(** Conjunctive-query containment, equivalence and minimization — the
    Chandra–Merlin theory (STOC 1977) the paper's introduction builds on
    ("the complexity of query languages has been — next to
    expressibility — one of the main preoccupations of database theory
    ever since the paper by Chandra and Merlin").

    [Q1 ⊆ Q2] iff there is a homomorphism from [Q2] to [Q1]'s canonical
    (frozen) database mapping head to head.  Deciding it is
    NP-complete in the query sizes — and, being clique-hard in the same
    way as Theorem 1's evaluation problem, W[1]-hard in the size of
    [Q2]; everything here is exact and intended for query-sized
    inputs.

    Only constraint-free conjunctive queries are supported (constraint
    atoms change the containment theory; [Invalid_argument] is raised). *)

(** The canonical database of a query: each variable frozen to a
    distinguished constant.  Returns the database and the frozen head
    tuple. *)
val canonical_database :
  Paradb_query.Cq.t ->
  Paradb_relational.Database.t * Paradb_relational.Tuple.t

(** [homomorphism q1 q2] — a homomorphism from [q2] into [q1]'s frozen
    body mapping [q2]'s head to [q1]'s frozen head, if any. *)
val homomorphism :
  Paradb_query.Cq.t -> Paradb_query.Cq.t ->
  Paradb_query.Binding.t option

(** [contained q1 q2] — does [Q1 ⊆ Q2] hold on every database? *)
val contained : Paradb_query.Cq.t -> Paradb_query.Cq.t -> bool

val equivalent : Paradb_query.Cq.t -> Paradb_query.Cq.t -> bool

(** The core of [q]: an equivalent subquery with a minimal number of
    atoms (unique up to renaming).  Computed by greedily dropping atoms
    while an endomorphism onto the rest exists. *)
val minimize : Paradb_query.Cq.t -> Paradb_query.Cq.t
