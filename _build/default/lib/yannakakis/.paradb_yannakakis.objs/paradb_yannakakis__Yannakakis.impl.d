lib/yannakakis/yannakakis.ml: Array Atom Binding Cq List Paradb_hypergraph Paradb_query Paradb_relational Printf Term
