module Database = Paradb_relational.Database
module Relation = Paradb_relational.Relation
module Tuple = Paradb_relational.Tuple
module Value = Paradb_relational.Value
module Cnf = Paradb_wsat.Cnf
open Paradb_query

type labeling = {
  cnf : Cnf.t;
  k : int;
  vars : (int * Tuple.t) array;
}

let reduce db q =
  if q.Cq.head <> [] then
    invalid_arg "Cq_to_wsat.reduce: query must be Boolean (closed)";
  if Cq.has_constraints q then
    invalid_arg "Cq_to_wsat.reduce: constraint atoms are not part of this \
                 reduction";
  let atoms = Array.of_list q.Cq.body in
  let k = Array.length atoms in
  (* Enumerate the consistent (atom, tuple) pairs; remember each pair's
     induced partial instantiation. *)
  let entries = ref [] in
  let count = ref 0 in
  Array.iteri
    (fun ai atom ->
      let rel = Database.find db atom.Atom.rel in
      Relation.iter
        (fun tuple ->
          match Atom.matches atom tuple with
          | None -> ()
          | Some binding ->
              entries := (!count, ai, tuple, binding) :: !entries;
              incr count)
        rel)
    atoms;
  let entries = Array.of_list (List.rev !entries) in
  let n_vars = Array.length entries in
  let clauses = ref [] in
  Array.iter
    (fun (v1, a1, _, b1) ->
      Array.iter
        (fun (v2, a2, _, b2) ->
          if v1 < v2 then
            let conflict =
              if a1 = a2 then true
                (* at most one tuple per atom *)
              else
                (* disagreement on a shared variable *)
                List.exists
                  (fun (x, value) ->
                    match Binding.find x b2 with
                    | Some value' -> not (Value.equal value value')
                    | None -> false)
                  (Binding.bindings b1)
            in
            if conflict then
              clauses := [ Cnf.neg v1; Cnf.neg v2 ] :: !clauses)
        entries)
    entries;
  {
    cnf = Cnf.make ~n_vars !clauses;
    k;
    vars = Array.map (fun (_, ai, tuple, _) -> (ai, tuple)) entries;
  }

let decode labeling q assignment =
  let atoms = Array.of_list q.Cq.body in
  let binding = ref Binding.empty in
  Array.iteri
    (fun v (ai, tuple) ->
      if assignment.(v) then
        match Atom.matches atoms.(ai) tuple with
        | Some b -> (
            match Binding.merge !binding b with
            | Some merged -> binding := merged
            | None ->
                invalid_arg "Cq_to_wsat.decode: inconsistent assignment")
        | None -> assert false)
    labeling.vars;
  !binding
