(** Theorem 3: acyclic conjunctive queries with [<] comparisons are
    W[1]-hard — the number-encoded reduction from [clique].

    For a graph on vertices [0..n-1] (self-loops added, as the theorem
    assumes), let [⟨i,j,b⟩ = (i+j)·n³ + |i-j|·n² + b·n + i].  The database
    has two binary relations:
    - [p] = {(⟨i,j,0⟩, ⟨i,j,1⟩) : (i,j) an edge},
    - [r] = {(⟨i,j,1⟩, ⟨i,j',0⟩) : all i, j, j'} (size n³),
    and the Boolean query is

    {v s :- ⋀_{i,j} p(x_ij, x'_ij), ⋀_{i, j<k} r(x'_ij, x_i(j+1)),
        ⋀_{i<j} x_ij < x_ji,  x_ji < x'_ij v}

    whose hypergraph is a union of paths (acyclic) and whose comparisons
    are strict and acyclic.  [G] has a [k]-clique iff the query is
    true. *)

val encode : n:int -> i:int -> j:int -> b:int -> int

val database : Paradb_graph.Graph.t -> Paradb_relational.Database.t

val query : n:int -> k:int -> Paradb_query.Cq.t

val reduce :
  Paradb_graph.Graph.t -> k:int ->
  Paradb_query.Cq.t * Paradb_relational.Database.t
