(** Theorem 1, upper bound for conjunctive queries (parameter [q]): the
    transformation of the decision problem into weighted 2-CNF
    satisfiability.

    For each atom [a] of the (closed) query and each database tuple [s]
    consistent with [a], a Boolean variable [z_{a,s}] ("[a] maps to [s]").
    Clauses: [¬z_{a,s} ∨ ¬z_{a,s'}] for distinct tuples of one atom, and
    [¬z_{a,s} ∨ ¬z_{a',s'}] whenever the two choices disagree on a shared
    variable.  The query is satisfiable iff the CNF has a satisfying
    assignment with exactly [k = #atoms] true variables.  All literals are
    negative and all clauses binary — see {!Paradb_wsat.Cnf}. *)

type labeling = {
  cnf : Paradb_wsat.Cnf.t;
  k : int;                (** the target weight: number of atoms *)
  vars : (int * Paradb_relational.Tuple.t) array;
      (** for each CNF variable, its (atom index, tuple) meaning *)
}

(** The query must be Boolean (no head) and constraint-free; raises
    [Invalid_argument] otherwise. *)
val reduce :
  Paradb_relational.Database.t -> Paradb_query.Cq.t -> labeling

(** Decode a weight-[k] satisfying assignment into the variable
    instantiation it encodes. *)
val decode :
  labeling -> Paradb_query.Cq.t -> bool array -> Paradb_query.Binding.t
