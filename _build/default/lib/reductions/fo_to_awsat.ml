module Database = Paradb_relational.Database
module Relation = Paradb_relational.Relation
module Value = Paradb_relational.Value
module Formula = Paradb_wsat.Formula
module Alternating = Paradb_wsat.Alternating
open Paradb_query

type labeling = {
  formula : Formula.t;
  blocks : Alternating.block list;
  n_vars : int;
  z : (int * Value.t) array;
}

let reduce db sentence =
  if not (Fo.is_sentence sentence) then
    invalid_arg "Fo_to_awsat.reduce: formula has free variables";
  let prefix, matrix = Fo.prenex sentence in
  let ys = List.map snd prefix in
  let k = List.length ys in
  let index_of y =
    let rec go i = function
      | [] -> invalid_arg "Fo_to_awsat: unknown variable"
      | x :: rest -> if x = y then i else go (i + 1) rest
    in
    go 0 ys
  in
  let domain =
    Value.Set.elements
      (Value.Set.union (Database.domain db)
         (Value.Set.of_list
            (List.filter_map
               (function Term.Const v -> Some v | Term.Var _ -> None)
               (let rec consts = function
                  | Fo.True | Fo.False -> []
                  | Fo.Rel a -> a.Atom.args
                  | Fo.Eq (l, r) -> [ l; r ]
                  | Fo.Not f -> consts f
                  | Fo.And fs | Fo.Or fs -> List.concat_map consts fs
                  | Fo.Exists (_, f) | Fo.Forall (_, f) -> consts f
                in
                consts sentence))))
  in
  let d = List.length domain in
  if k > 0 && d = 0 then
    invalid_arg "Fo_to_awsat.reduce: empty domain under quantifiers";
  let domain_index =
    let table = Value.Table.create (max 1 d) in
    List.iteri (fun i v -> Value.Table.add table v i) domain;
    fun v -> Value.Table.find_opt table v
  in
  let z_var i c =
    match domain_index c with
    | Some ci -> Some (Formula.var ((i * d) + ci))
    | None -> None
  in
  let translate_atom a =
    let rel = Database.find db a.Atom.rel in
    let disjuncts =
      Relation.fold
        (fun s acc ->
          let rec go j conjuncts seen = function
            | [] -> Some (List.rev conjuncts)
            | Term.Const c :: rest ->
                if Value.equal c s.(j) then go (j + 1) conjuncts seen rest
                else None
            | Term.Var x :: rest -> (
                match List.assoc_opt x seen with
                | Some prev when not (Value.equal prev s.(j)) -> None
                | _ -> (
                    match z_var (index_of x) s.(j) with
                    | Some zv ->
                        go (j + 1) (zv :: conjuncts) ((x, s.(j)) :: seen) rest
                    | None -> None))
          in
          match go 0 [] [] a.Atom.args with
          | Some conjuncts -> Formula.conj conjuncts :: acc
          | None -> acc)
        rel []
    in
    Formula.disj disjuncts
  in
  let translate_eq l r =
    match l, r with
    | Term.Const a, Term.Const b -> Formula.F_const (Value.equal a b)
    | Term.Var x, Term.Const c | Term.Const c, Term.Var x -> (
        match z_var (index_of x) c with
        | Some zv -> zv
        | None -> Formula.F_const false)
    | Term.Var x, Term.Var y ->
        let i = index_of x and j = index_of y in
        Formula.disj
          (List.filter_map
             (fun c ->
               match z_var i c, z_var j c with
               | Some a, Some b -> Some (Formula.conj [ a; b ])
               | _ -> None)
             domain)
  in
  let rec translate = function
    | Fo.True -> Formula.F_const true
    | Fo.False -> Formula.F_const false
    | Fo.Rel a -> translate_atom a
    | Fo.Eq (l, r) -> translate_eq l r
    | Fo.Not f -> Formula.neg (translate f)
    | Fo.And fs -> Formula.conj (List.map translate fs)
    | Fo.Or fs -> Formula.disj (List.map translate fs)
    | Fo.Exists _ | Fo.Forall _ ->
        assert false (* the prenex matrix is quantifier-free *)
  in
  let blocks =
    List.mapi
      (fun i (q, _) ->
        {
          Alternating.quantifier =
            (match q with
            | Fo.Q_exists -> Alternating.Q_exists
            | Fo.Q_forall -> Alternating.Q_forall);
          vars = List.init d (fun ci -> (i * d) + ci);
          weight = 1;
        })
      prefix
  in
  let z =
    Array.init (k * d) (fun idx -> (idx / d, List.nth domain (idx mod d)))
  in
  { formula = translate matrix; blocks; n_vars = k * d; z }

let holds lab =
  Alternating.holds ~n_vars:(max 1 lab.n_vars)
    ~eval:(fun a -> Formula.eval lab.formula a)
    lab.blocks
