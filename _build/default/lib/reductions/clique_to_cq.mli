(** Theorem 1, lower bounds for conjunctive queries: the parametric
    reduction from [clique] (W[1]-complete).

    For an instance [(G, k)] the database holds one binary relation
    [g] (the symmetric closure of the edge set) and the query is

    {v P :- ⋀_{1 ≤ i < j ≤ k} g(x_i, x_j) v}

    [G] has a [k]-clique iff the Boolean query is true.  Query size is
    [O(k²)]; number of variables is [k] — so this single construction
    establishes both parameter rows, for a fixed schema. *)

val database : Paradb_graph.Graph.t -> Paradb_relational.Database.t

(** The Boolean clique query for parameter [k]. *)
val query : k:int -> Paradb_query.Cq.t

(** One-call reduction. *)
val reduce :
  Paradb_graph.Graph.t -> k:int ->
  Paradb_query.Cq.t * Paradb_relational.Database.t

(** Decode a satisfying binding back into clique vertices. *)
val decode : Paradb_query.Binding.t -> k:int -> int list
