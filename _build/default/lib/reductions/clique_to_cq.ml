module Database = Paradb_relational.Database
module Relation = Paradb_relational.Relation
module Value = Paradb_relational.Value
module Graph = Paradb_graph.Graph
open Paradb_query

let database g =
  let rows =
    List.concat_map
      (fun (u, v) ->
        let a = Value.Int u and b = Value.Int v in
        if u = v then [ [| a; b |] ] else [ [| a; b |]; [| b; a |] ])
      (Graph.edges g)
  in
  Database.of_relations [ Relation.create ~name:"g" ~schema:[ "u"; "w" ] rows ]

let var i = Term.var (Printf.sprintf "x%d" i)

let query ~k =
  let atoms = ref [] in
  for i = k downto 1 do
    for j = k downto i + 1 do
      atoms := Atom.make "g" [ var i; var j ] :: !atoms
    done
  done;
  if !atoms = [] then
    (* k <= 1: a 1-clique is any vertex; g(x1, x1) would demand a
       self-loop, so use an existential edge endpoint instead.  For k = 0
       the query is trivially true (empty body). *)
    if k = 1 then Cq.make ~name:"p" ~head:[] [ Atom.make "g" [ var 1; Term.var "y" ] ]
    else Cq.make ~name:"p" ~head:[] []
  else Cq.make ~name:"p" ~head:[] !atoms

let reduce g ~k = (query ~k, database g)

let decode binding ~k =
  List.init k (fun i ->
      match Binding.find (Printf.sprintf "x%d" (i + 1)) binding with
      | Some v -> Value.to_int v
      | None -> invalid_arg "Clique_to_cq.decode: unbound variable")
