(** The schema axis of Figure 1: any (variable-schema) instance of
    conjunctive-query evaluation transforms into one over a single fixed
    schema, so "the assumption on the schema makes no difference".

    Encoding: each database tuple gets a fresh surrogate id [t]; three
    fixed relations describe everything:
    - [tup(t, r)]   — tuple [t] belongs to relation named [r];
    - [cell(t, p, v)] — position [p] of tuple [t] holds value [v].
    An atom [R(τ_1, ..., τ_r)] becomes
    [tup(z, "R"), cell(z, 1, τ_1), ..., cell(z, r, τ_r)] with a fresh
    variable [z] per atom — the query stays conjunctive, grows only
    linearly, and gains one variable per atom.  Constraint atoms carry
    over unchanged. *)

(** [reduce db q] — the rewritten query and fixed-schema database.
    Relation names must not collide with the surrogate-id space (always
    true: ids are fresh integers, names are strings). *)
val reduce :
  Paradb_relational.Database.t -> Paradb_query.Cq.t ->
  Paradb_query.Cq.t * Paradb_relational.Database.t
