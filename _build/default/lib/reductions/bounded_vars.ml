module Database = Paradb_relational.Database
module Relation = Paradb_relational.Relation
module Tuple = Paradb_relational.Tuple
open Paradb_query

(* P_a: the relation, over the atom's distinct variables in canonical
   (sorted) order, of instantiations mapping the atom into its database
   relation. *)
let atom_instantiations db atom order =
  let rel = Database.find db atom.Atom.rel in
  let rows =
    Relation.fold
      (fun tuple acc ->
        match Atom.matches atom tuple with
        | None -> acc
        | Some binding ->
            let row =
              Array.of_list
                (List.map
                   (fun x ->
                     match Binding.find x binding with
                     | Some v -> v
                     | None -> assert false)
                   order)
            in
            Tuple.Set.add row acc)
      rel Tuple.Set.empty
  in
  Relation.of_set ~schema:order rows

let reduce db q =
  if Cq.has_constraints q then
    invalid_arg "Bounded_vars.reduce: constraint atoms are not supported";
  (* Group atoms by their exact variable set. *)
  let groups : (string list * Atom.t list) list =
    List.fold_left
      (fun groups atom ->
        let key = List.sort String.compare (Atom.vars atom) in
        match List.assoc_opt key groups with
        | Some members ->
            (key, atom :: members) :: List.remove_assoc key groups
        | None -> (key, [ atom ]) :: groups)
      [] q.Cq.body
  in
  let rel_name key = "rs_" ^ String.concat "_" key in
  let new_relations =
    List.map
      (fun (key, members) ->
        let rels =
          List.map (fun a -> atom_instantiations db a key) members
        in
        let intersection =
          match rels with
          | [] -> assert false
          | first :: rest -> List.fold_left Relation.inter first rest
        in
        Relation.with_name (rel_name key) intersection)
      groups
  in
  let new_atoms =
    List.map
      (fun (key, _) -> Atom.make (rel_name key) (List.map Term.var key))
      groups
  in
  (* Atoms with no variables (all constants) have key []; R_[] is 0-ary:
     nonempty iff every such atom maps to a tuple. *)
  let q' = Cq.make ~name:q.Cq.name ~head:q.Cq.head new_atoms in
  (q', Database.of_relations new_relations)
