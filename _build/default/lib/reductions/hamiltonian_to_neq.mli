(** Section 5's NP-hardness of the *combined* complexity of acyclic
    conjunctive queries with inequalities: the reduction from Hamiltonian
    path.  The query is as big as the database — exactly the regime the
    fixed-parameter analysis rules out.

    {v g :- e(x_1,x_2), ..., e(x_{n-1},x_n), x_i ≠ x_j (all i < j) v} *)

val reduce :
  Paradb_graph.Graph.t ->
  Paradb_query.Cq.t * Paradb_relational.Database.t

(** Paper's literal form uses only consecutive-pair atoms; the
    full set of inequalities makes the instantiation a permutation. *)
val query : n:int -> Paradb_query.Cq.t
