(** Theorem 1, lower bound for positive queries under the variable
    parameter: reduction from weighted formula satisfiability
    (W[SAT]-complete).

    For a Boolean formula [φ] on variables [x_1..x_n] and weight [k], the
    database holds [EQ = {(i,i)}] and [NEQ = {(i,j) : i ≠ j}] over
    [{1..n}], and the query is

    {v ∃y_1..y_k  (⋀_{i<j} NEQ(y_i, y_j)) ∧ ψ v}

    where [ψ] replaces each positive occurrence of [x_i] by
    [⋁_j EQ(i, y_j)] and each negative occurrence by [⋀_j NEQ(i, y_j)].
    The query has [k] variables and is positive (and prenex). *)

val database : n:int -> Paradb_relational.Database.t

val query : Paradb_wsat.Formula.t -> k:int -> Paradb_query.Fo.t

(** [n_vars] fixes the variable universe [x_1..x_n] (the weight counts
    true variables over the whole universe, including variables the
    formula does not mention); defaults to the formula's own variable
    count. *)
val reduce :
  ?n_vars:int -> Paradb_wsat.Formula.t -> k:int ->
  Paradb_query.Fo.t * Paradb_relational.Database.t
