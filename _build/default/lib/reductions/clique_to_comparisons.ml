module Database = Paradb_relational.Database
module Relation = Paradb_relational.Relation
module Value = Paradb_relational.Value
module Graph = Paradb_graph.Graph
open Paradb_query

let encode ~n ~i ~j ~b = ((i + j) * n * n * n) + (abs (i - j) * n * n) + (b * n) + i

let database g =
  let n = Graph.n_vertices g in
  let enc i j b = Value.Int (encode ~n ~i ~j ~b) in
  (* p: one tuple per (directed) edge, self-loops included. *)
  let p_rows = ref [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i = j || Graph.has_edge g i j then
        p_rows := [| enc i j 0; enc i j 1 |] :: !p_rows
    done
  done;
  let r_rows = ref [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      for j' = 0 to n - 1 do
        r_rows := [| enc i j 1; enc i j' 0 |] :: !r_rows
      done
    done
  done;
  Database.of_relations
    [
      Relation.create ~name:"p" ~schema:[ "a"; "b" ] !p_rows;
      Relation.create ~name:"r" ~schema:[ "a"; "b" ] !r_rows;
    ]

let x i j = Term.var (Printf.sprintf "x_%d_%d" i j)
let x' i j = Term.var (Printf.sprintf "x'_%d_%d" i j)

let query ~n ~k =
  ignore n;
  let atoms = ref [] in
  for i = k downto 1 do
    for j = k downto 1 do
      atoms := Atom.make "p" [ x i j; x' i j ] :: !atoms
    done
  done;
  for i = k downto 1 do
    for j = k - 1 downto 1 do
      atoms := Atom.make "r" [ x' i j; x i (j + 1) ] :: !atoms
    done
  done;
  let constraints = ref [] in
  for i = k downto 1 do
    for j = k downto i + 1 do
      (* x_ij < x_ji < x'_ij *)
      constraints :=
        Constr.lt (x i j) (x j i) :: Constr.lt (x j i) (x' i j) :: !constraints
    done
  done;
  Cq.make ~name:"s" ~head:[] ~constraints:!constraints !atoms

let reduce g ~k = (query ~n:(Graph.n_vertices g) ~k, database g)
