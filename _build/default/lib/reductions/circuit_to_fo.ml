module Database = Paradb_relational.Database
module Relation = Paradb_relational.Relation
module Value = Paradb_relational.Value
module Circuit = Paradb_wsat.Circuit
open Paradb_query

type normalized = {
  circuit : Circuit.t;
  t : int;
  input_gates : int array;
}

(* Nodes of the normalized circuit: an original gate at its assigned
   level, or a lift of an original gate to a higher level (a single-input
   identity gate of the parity-appropriate kind). *)
type node = { orig : int; level : int }

let normalize c =
  if not (Circuit.is_monotone c) then
    invalid_arg "Circuit_to_fo.normalize: circuit must be monotone";
  let n = Array.length c.Circuit.gates in
  (* Canonicalize duplicate input gates: in the paper's construction each
     input variable *is* one level-0 gate, so all references to a variable
     must target a single gate. *)
  let canon = Array.init n Fun.id in
  let first_gate_of_var = Hashtbl.create 16 in
  Array.iteri
    (fun id gate ->
      match gate with
      | Circuit.G_input v -> (
          match Hashtbl.find_opt first_gate_of_var v with
          | None -> Hashtbl.add first_gate_of_var v id
          | Some first -> canon.(id) <- first)
      | _ -> ())
    c.Circuit.gates;
  let gates =
    Array.map
      (function
        | Circuit.G_and js -> Circuit.G_and (List.map (fun j -> canon.(j)) js)
        | Circuit.G_or js -> Circuit.G_or (List.map (fun j -> canon.(j)) js)
        | g -> g)
      c.Circuit.gates
  in
  let is_duplicate_input id = canon.(id) <> id in
  (* Assign levels: inputs at 0; OR gates at even, AND gates at odd
     levels, strictly above their children. *)
  let lvl = Array.make n 0 in
  Array.iteri
    (fun id gate ->
      match gate with
      | Circuit.G_input _ -> lvl.(id) <- 0
      | Circuit.G_const _ ->
          invalid_arg "Circuit_to_fo.normalize: constant gates unsupported"
      | Circuit.G_not _ -> assert false (* monotone *)
      | Circuit.G_and js | Circuit.G_or js ->
          if js = [] then
            invalid_arg "Circuit_to_fo.normalize: empty fan-in";
          let base =
            1 + List.fold_left (fun acc j -> max acc lvl.(j)) 0 js
          in
          let want_even =
            match gate with Circuit.G_or _ -> true | _ -> false
          in
          let parity_ok = base mod 2 = if want_even then 0 else 1 in
          lvl.(id) <- (if parity_ok then base else base + 1))
    gates;
  (* Top level: an OR at an even level.  If the output is an AND (odd
     level) lift it once; if it is an input, t = 0 and nothing to do. *)
  let out = canon.(c.Circuit.output) in
  let out_level = if lvl.(out) mod 2 = 0 then lvl.(out) else lvl.(out) + 1 in
  (* Collect all needed nodes: each original gate at its own level, plus
     lifts required by wires spanning more than one level (and by the
     output lift). *)
  let module NT = Hashtbl in
  let nodes : (node, unit) NT.t = NT.create 64 in
  let need node = if not (NT.mem nodes node) then NT.add nodes node () in
  Array.iteri
    (fun id _ ->
      if not (is_duplicate_input id) then
        need { orig = id; level = lvl.(id) })
    gates;
  let demand_lift orig upto =
    (* lift nodes (orig, l) for lvl(orig) < l <= upto *)
    for l = lvl.(orig) + 1 to upto do
      need { orig; level = l }
    done
  in
  Array.iteri
    (fun id gate ->
      match gate with
      | Circuit.G_and js | Circuit.G_or js ->
          List.iter (fun j -> demand_lift j (lvl.(id) - 1)) js
      | Circuit.G_input _ -> ()
      | Circuit.G_const _ | Circuit.G_not _ -> assert false)
    gates;
  demand_lift out out_level;
  (* Topological order: by level. *)
  let node_list =
    List.sort
      (fun a b ->
        if a.level <> b.level then Int.compare a.level b.level
        else Int.compare a.orig b.orig)
      (NT.fold (fun node () acc -> node :: acc) nodes [])
  in
  let ids : (node, int) NT.t = NT.create 64 in
  List.iteri (fun i node -> NT.add ids node i) node_list;
  let id_of node = NT.find ids node in
  let new_gates =
    Array.of_list
      (List.map
         (fun node ->
           if node.level > lvl.(node.orig) then
             (* Lift: identity gate; OR at even levels, AND at odd. *)
             let child = id_of { node with level = node.level - 1 } in
             if node.level mod 2 = 0 then Circuit.G_or [ child ]
             else Circuit.G_and [ child ]
           else
             match gates.(node.orig) with
             | Circuit.G_input i -> Circuit.G_input i
             | Circuit.G_and js ->
                 Circuit.G_and
                   (List.map
                      (fun j -> id_of { orig = j; level = node.level - 1 })
                      js)
             | Circuit.G_or js ->
                 Circuit.G_or
                   (List.map
                      (fun j -> id_of { orig = j; level = node.level - 1 })
                      js)
             | Circuit.G_const _ | Circuit.G_not _ -> assert false)
         node_list)
  in
  let output = id_of { orig = out; level = out_level } in
  let circuit =
    Circuit.make ~n_inputs:c.Circuit.n_inputs new_gates ~output
  in
  let input_gates = Array.make c.Circuit.n_inputs (-1) in
  List.iteri
    (fun i node ->
      match new_gates.(i) with
      | Circuit.G_input v when node.level = lvl.(node.orig) ->
          input_gates.(v) <- i
      | _ -> ())
    node_list;
  { circuit; t = out_level / 2; input_gates }

let database nz =
  let gates = nz.circuit.Circuit.gates in
  let rows = ref [] in
  Array.iteri
    (fun id gate ->
      match gate with
      | Circuit.G_input _ ->
          rows := [| Value.Int id; Value.Int id |] :: !rows
      | Circuit.G_and js | Circuit.G_or js ->
          List.iter
            (fun j -> rows := [| Value.Int id; Value.Int j |] :: !rows)
            js
      | Circuit.G_const _ | Circuit.G_not _ -> assert false)
    gates;
  Database.of_relations
    [ Relation.create ~name:"c" ~schema:[ "a"; "b" ] !rows ]

(* theta_{level}(x): truth of the OR gate denoted by the term [x], with
   the existentially chosen input gates named by [xs].  Only two helper
   variable names are used, alternating per level — hence k + 2 variables
   total. *)
let theta ~xs level x =
  let rec go level (x : Term.t) next_name =
    if level = 0 then
      Fo.disj (List.map (fun xi -> Fo.atom "c" [ x; Term.var xi ]) xs)
    else begin
      let y = next_name in
      let z = if y = "u" then "w" else "u" in
      Fo.exists [ y ]
        (Fo.conj
           [
             Fo.atom "c" [ x; Term.var y ];
             Fo.forall [ z ]
               (Fo.disj
                  [
                    Fo.neg (Fo.atom "c" [ Term.var y; Term.var z ]);
                    go (level - 2) (Term.var z) y;
                  ]);
           ])
    end
  in
  go level x "u"

let output_theta nz ~xs =
  theta ~xs (2 * nz.t)
    (Term.const (Value.Int nz.circuit.Circuit.output))

let query nz ~k =
  let xs = List.init k (fun i -> Printf.sprintf "x%d" (i + 1)) in
  Fo.exists xs (output_theta nz ~xs)

let reduce c ~k =
  let nz = normalize c in
  (query nz ~k, database nz)
