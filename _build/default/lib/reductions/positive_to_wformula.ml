module Database = Paradb_relational.Database
module Relation = Paradb_relational.Relation
module Value = Paradb_relational.Value
module Formula = Paradb_wsat.Formula
open Paradb_query

type labeling = {
  formula : Formula.t;
  k : int;
  z : (int * Value.t) array;
}

let reduce db sentence =
  if not (Fo.is_positive sentence) then
    invalid_arg "Positive_to_wformula.reduce: sentence is not positive";
  if not (Fo.is_sentence sentence) then
    invalid_arg "Positive_to_wformula.reduce: formula has free variables";
  let prefix, matrix = Fo.prenex sentence in
  let ys = List.map snd prefix in
  let k = List.length ys in
  let index_of y =
    let rec go i = function
      | [] -> invalid_arg "Positive_to_wformula: unknown variable"
      | x :: rest -> if x = y then i else go (i + 1) rest
    in
    go 0 ys
  in
  let domain = Value.Set.elements (Database.domain db) in
  let d = List.length domain in
  let domain_index =
    let table = Value.Table.create d in
    List.iteri (fun i v -> Value.Table.add table v i) domain;
    fun v -> Value.Table.find_opt table v
  in
  (* z_{i,c} at Boolean index i*d + index(c). *)
  let z_var i c =
    match domain_index c with
    | Some ci -> Some (Formula.var ((i * d) + ci))
    | None -> None (* constant not in the active domain *)
  in
  let translate_atom a =
    let rel = Database.find db a.Atom.rel in
    let disjuncts =
      Relation.fold
        (fun s acc ->
          (* s must agree with the atom's constants; variable positions
             contribute conjuncts z_{i, s[j]}.  A repeated variable must
             see equal values. *)
          let rec go j conjuncts seen = function
            | [] -> Some (List.rev conjuncts)
            | Term.Const c :: rest ->
                if Value.equal c s.(j) then go (j + 1) conjuncts seen rest
                else None
            | Term.Var x :: rest -> (
                let i = index_of x in
                match List.assoc_opt x seen with
                | Some prev when not (Value.equal prev s.(j)) -> None
                | _ -> (
                    match z_var i s.(j) with
                    | Some zv ->
                        go (j + 1) (zv :: conjuncts) ((x, s.(j)) :: seen) rest
                    | None -> None))
          in
          match go 0 [] [] a.Atom.args with
          | Some conjuncts -> Formula.conj conjuncts :: acc
          | None -> acc)
        rel []
    in
    Formula.disj disjuncts
  in
  let translate_eq l r =
    match l, r with
    | Term.Const a, Term.Const b -> Formula.F_const (Value.equal a b)
    | Term.Var x, Term.Const c | Term.Const c, Term.Var x -> (
        match z_var (index_of x) c with
        | Some zv -> zv
        | None -> Formula.F_const false)
    | Term.Var x, Term.Var y ->
        let i = index_of x and j = index_of y in
        Formula.disj
          (List.filter_map
             (fun c ->
               match z_var i c, z_var j c with
               | Some a, Some b -> Some (Formula.conj [ a; b ])
               | _ -> None)
             domain)
  in
  let rec translate = function
    | Fo.True -> Formula.F_const true
    | Fo.False -> Formula.F_const false
    | Fo.Rel a -> translate_atom a
    | Fo.Eq (l, r) -> translate_eq l r
    | Fo.And fs -> Formula.conj (List.map translate fs)
    | Fo.Or fs -> Formula.disj (List.map translate fs)
    | Fo.Not _ | Fo.Exists _ | Fo.Forall _ ->
        assert false (* prenex positive matrix is quantifier- and not-free *)
  in
  let at_most_one =
    List.concat
      (List.init k (fun i ->
           List.concat
             (List.mapi
                (fun ci _ ->
                  List.filter_map
                    (fun cj ->
                      if cj > ci then
                        Some
                          (Formula.disj
                             [
                               Formula.neg (Formula.var ((i * d) + ci));
                               Formula.neg (Formula.var ((i * d) + cj));
                             ])
                      else None)
                    (List.init d Fun.id))
                domain)))
  in
  let formula = Formula.conj (at_most_one @ [ translate matrix ]) in
  let z =
    Array.init (k * d) (fun idx ->
        (idx / d, List.nth domain (idx mod d)))
  in
  { formula; k; z }
