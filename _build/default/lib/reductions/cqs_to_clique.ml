module Graph = Paradb_graph.Graph

let disjunct_graph db q =
  let labeling = Cq_to_wsat.reduce db q in
  let cnf = labeling.Cq_to_wsat.cnf in
  let n = cnf.Paradb_wsat.Cnf.n_vars in
  let conflicts = Paradb_wsat.Cnf.conflict_graph cnf in
  (* Compatibility graph: join every pair not excluded by a clause. *)
  let g = Graph.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if not (Graph.has_edge conflicts u v) then Graph.add_edge g u v
    done
  done;
  (g, labeling.Cq_to_wsat.k)

let reduce db queries =
  let parts = List.map (disjunct_graph db) queries in
  let k = List.fold_left (fun acc (_, ki) -> max acc ki) 0 parts in
  let padded =
    List.map (fun (g, ki) -> Graph.add_apex_clique g (k - ki)) parts
  in
  let union =
    match padded with
    | [] -> Graph.create 0
    | first :: rest -> List.fold_left Graph.disjoint_union first rest
  in
  (union, k)
