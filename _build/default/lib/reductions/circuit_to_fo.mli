(** Theorem 1, lower bounds for first-order queries: the reduction from
    monotone weighted circuit satisfiability (W[P]-complete; restricted
    to depth [t] it is W[t]-complete, giving the parameter-[q] row).

    The circuit is first normalized to strictly alternating OR/AND
    levels with the output an OR gate at an even level [2t] and every
    wire spanning exactly one level.  The database is the wiring relation
    [c(a, b)] ("gate [a] has input [b]") plus self-pairs [c(g, g)] for
    the level-0 gates; the query is

    {v Q = ∃x_1..x_k θ_{2t}(o) v}

    with [θ_0(x) = ⋁_i c(x, x_i)] and
    [θ_{2i}(x) = ∃y (c(x,y) ∧ ∀z (¬c(y,z) ∨ θ_{2i-2}(z)))], reusing two
    variable names across levels — so the query has [k+2] variables and
    size [O(t + k)], over a fixed schema. *)

type normalized = {
  circuit : Paradb_wsat.Circuit.t;  (** alternating, layered *)
  t : int;                          (** output level is [2t] *)
  input_gates : int array;          (** gate id of each input variable *)
}

(** Raises [Invalid_argument] on non-monotone circuits, constant gates or
    empty fan-ins. *)
val normalize : Paradb_wsat.Circuit.t -> normalized

val database : normalized -> Paradb_relational.Database.t

(** [output_theta nz ~xs] — the formula [θ_{2t}(o)] with the chosen
    input gates named by the free variables [xs]; shared with the
    alternating (AW[P]) reduction. *)
val output_theta : normalized -> xs:string list -> Paradb_query.Fo.t

(** The sentence [Q] for parameter [k]. *)
val query : normalized -> k:int -> Paradb_query.Fo.t

val reduce :
  Paradb_wsat.Circuit.t -> k:int ->
  Paradb_query.Fo.t * Paradb_relational.Database.t
