(** Theorem 1, the converse (membership) construction: prenex positive
    queries under parameter [v] are *in* W[SAT].

    For a closed prenex positive query [∃y_1..y_k ψ] over database [d]
    with domain [D], Boolean variables [z_{i,c}] ([i ∈ 1..k], [c ∈ D])
    mean "[y_i] is mapped to [c]".  The weighted-satisfiability target is
    the conjunction of [¬z_{i,c} ∨ ¬z_{i,c'}] for [c ≠ c'] with [ψ] in
    which each atom [R(τ)] is replaced by

    {v ⋁_{s ∈ R consistent with τ's constants} ⋀_{j : τ[j] = y_i} z_{i, s[j]} v}

    The query holds on [d] iff the formula has a weight-[k] satisfying
    assignment. *)

type labeling = {
  formula : Paradb_wsat.Formula.t;
  k : int;
  z : (int * Paradb_relational.Value.t) array;
      (** meaning of each Boolean variable: (quantifier index, constant) *)
}

(** Raises [Invalid_argument] if the sentence is not positive or not
    closed.  The formula is built after prenexing (which is harmless
    here: we only need *some* prenex form; the paper's point is that
    prenexing does not preserve [v], which the caller can observe via
    [Fo.num_vars]). *)
val reduce :
  Paradb_relational.Database.t -> Paradb_query.Fo.t -> labeling
