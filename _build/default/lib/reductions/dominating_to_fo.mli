(** The W[2] face of Theorem 1's first-order row: dominating set — the
    canonical W[2]-complete problem the paper names — expressed directly
    as a first-order query with one quantifier alternation:

    {v ∃x_1..x_k ∀y (y = x_1 ∨ ... ∨ y = x_k ∨ e(y,x_1) ∨ ... ∨ e(y,x_k)) v}

    over the symmetric edge relation plus a unary vertex relation (so
    isolated vertices are in the active domain).  The query has [k + 1]
    variables and size [O(k)]. *)

val reduce :
  Paradb_graph.Graph.t -> k:int ->
  Paradb_query.Fo.t * Paradb_relational.Database.t
