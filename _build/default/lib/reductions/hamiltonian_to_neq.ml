module Graph = Paradb_graph.Graph
open Paradb_query

let var i = Term.var (Printf.sprintf "x%d" i)

let query ~n =
  if n < 1 then invalid_arg "Hamiltonian_to_neq.query: empty graph";
  if n = 1 then Cq.make ~name:"g" ~head:[] [ Atom.make "v" [ var 1 ] ]
  else begin
    let atoms =
      List.init (n - 1) (fun i -> Atom.make "e" [ var (i + 1); var (i + 2) ])
    in
    let constraints = ref [] in
    for i = n downto 1 do
      for j = n downto i + 1 do
        constraints := Constr.neq (var i) (var j) :: !constraints
      done
    done;
    Cq.make ~name:"g" ~head:[] ~constraints:!constraints atoms
  end

let reduce g =
  let n = Graph.n_vertices g in
  (query ~n, Paradb_core.Color_coding.graph_database g)
