(** Section 4's alternating membership direction: a *prenex* first-order
    sentence over a database reduces to alternating weighted formula
    satisfiability (AW[SAT]) with one weight-1 block per quantifier.

    Boolean variables [z_{i,c}] ("quantified variable [i] takes constant
    [c]") are grouped into a block per quantifier position, carrying the
    quantifier of that position and weight 1 — a weight-1 block picks
    exactly one constant, so no mutual-exclusion clauses are needed.
    Atoms of the (NNF) matrix translate as in the W[SAT] membership
    construction; negations translate to formula negations.

    (For *prenex positive* sentences every block is existential and this
    specializes to the W[SAT] membership of Theorem 1 — the paper's
    AW[SAT]-completeness claim for prenex queries under the parameter
    [v].) *)

type labeling = {
  formula : Paradb_wsat.Formula.t;
  blocks : Paradb_wsat.Alternating.block list;
  n_vars : int;
  z : (int * Paradb_relational.Value.t) array;
      (** meaning of each Boolean variable: (quantifier index, constant) *)
}

(** Raises [Invalid_argument] on open sentences or an empty active
    domain (with no constants, quantifiers have no range). *)
val reduce : Paradb_relational.Database.t -> Paradb_query.Fo.t -> labeling

(** Convenience: run the alternating game on the produced instance. *)
val holds : labeling -> bool
