(** Section 4's AW[P]-hardness: the Theorem-1 circuit reduction adapted
    to alternating quantification.

    For a monotone circuit whose inputs are partitioned into blocks
    [V_1..V_r] with quantifiers [Q_i] and weights [k_i], the query gets
    variables [x_{i,1} .. x_{i,k_i}] per block with the matching
    quantifier prefix, the database gains a relation
    [p = {(a, c*_i) : a ∈ V_i}] (with [c*_i] an arbitrary representative
    input gate of block [i]), and the body is

    {v [θ_{2t}(o) ∧ ⋀_{i : Q_i = ∃} ψ_i] ∨ ¬[⋀_{i : Q_i = ∀} ψ_i] v}

    where [ψ_i] states that block [i]'s variables denote distinct input
    gates of [V_i]:
    [ψ_i = ⋀_j (p(x_{ij}, c*_i) ∧ ⋀_{l≠j} ¬c(x_{ij}, x_{il}))]
    (distinctness via the wiring relation: among input gates, [c]
    contains exactly the self-pairs). *)

(** Raises [Invalid_argument] if the circuit is not monotone, a block is
    empty (no representative), or the blocks are invalid. *)
val reduce :
  Paradb_wsat.Circuit.t -> Paradb_wsat.Alternating.block list ->
  Paradb_query.Fo.t * Paradb_relational.Database.t
