module Database = Paradb_relational.Database
module Relation = Paradb_relational.Relation
module Value = Paradb_relational.Value
module Formula = Paradb_wsat.Formula
open Paradb_query

let database ~n =
  let eq_rows = List.init n (fun i -> [| Value.Int (i + 1); Value.Int (i + 1) |]) in
  let neq_rows =
    List.concat
      (List.init n (fun i ->
           List.filter_map
             (fun j ->
               if i <> j then Some [| Value.Int (i + 1); Value.Int (j + 1) |]
               else None)
             (List.init n Fun.id)))
  in
  Database.of_relations
    [
      Relation.create ~name:"eq" ~schema:[ "a"; "b" ] eq_rows;
      Relation.create ~name:"neq" ~schema:[ "a"; "b" ] neq_rows;
    ]

let y j = Term.var (Printf.sprintf "y%d" j)

let query phi ~k =
  let ys = List.init k (fun j -> Printf.sprintf "y%d" (j + 1)) in
  (* Positive occurrence of x_i: x_i is one of the chosen (true) indices. *)
  let positive i =
    Fo.disj
      (List.init k (fun j -> Fo.atom "eq" [ Term.int (i + 1); y (j + 1) ]))
  in
  (* Negative occurrence: x_i is none of the chosen indices. *)
  let negative i =
    Fo.conj
      (List.init k (fun j -> Fo.atom "neq" [ Term.int (i + 1); y (j + 1) ]))
  in
  let rec translate = function
    | Formula.F_const true -> Fo.True
    | Formula.F_const false -> Fo.False
    | Formula.F_var i -> positive i
    | Formula.F_not (Formula.F_var i) -> negative i
    | Formula.F_not _ ->
        assert false (* NNF below guarantees negations sit on variables *)
    | Formula.F_and fs -> Fo.conj (List.map translate fs)
    | Formula.F_or fs -> Fo.disj (List.map translate fs)
  in
  let distinct =
    List.concat
      (List.init k (fun i ->
           List.filter_map
             (fun j ->
               if j > i then Some (Fo.atom "neq" [ y (i + 1); y (j + 1) ])
               else None)
             (List.init k Fun.id)))
  in
  Fo.exists ys (Fo.conj (distinct @ [ translate (Formula.nnf phi) ]))

let reduce ?n_vars phi ~k =
  let n = max (Formula.n_vars phi) (Option.value n_vars ~default:0) in
  (query phi ~k, database ~n)
