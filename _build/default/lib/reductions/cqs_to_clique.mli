(** Footnote 2 of Theorem 1: turning a union of Boolean conjunctive
    queries (the DNF of a positive query) into a single [clique]
    instance — establishing that positive queries parametrically
    *transform* (not just reduce) to W[1].

    Each disjunct [Q_i] becomes a graph [G_i]: vertices are the
    consistent (atom, tuple) pairs of the 2-CNF construction; edges join
    compatible pairs from different atoms.  [Q_i] is satisfiable iff
    [G_i] has a clique of size [k_i = #atoms(Q_i)].  The parameters are
    equalized to [k = max k_i] by adding [k - k_i] universal vertices to
    each [G_i], and the final graph is the disjoint union. *)

val reduce :
  Paradb_relational.Database.t -> Paradb_query.Cq.t list ->
  Paradb_graph.Graph.t * int

(** The graph for one disjunct (before padding), with its clique target. *)
val disjunct_graph :
  Paradb_relational.Database.t -> Paradb_query.Cq.t ->
  Paradb_graph.Graph.t * int
