module Database = Paradb_relational.Database
module Relation = Paradb_relational.Relation
module Value = Paradb_relational.Value
module Circuit = Paradb_wsat.Circuit
module Alternating = Paradb_wsat.Alternating
open Paradb_query

let reduce circuit blocks =
  Alternating.validate ~n_vars:circuit.Circuit.n_inputs blocks;
  List.iter
    (fun b ->
      if b.Alternating.vars = [] then
        invalid_arg "Alternating_to_fo: empty block has no representative")
    blocks;
  let nz = Circuit_to_fo.normalize circuit in
  let gate_of_input v =
    Value.Int nz.Circuit_to_fo.input_gates.(v)
  in
  (* p: input gate |-> its block's representative gate *)
  let p_rows =
    List.concat_map
      (fun b ->
        let rep = gate_of_input (List.hd b.Alternating.vars) in
        List.map (fun v -> [| gate_of_input v; rep |]) b.Alternating.vars)
      blocks
  in
  let db =
    Database.add
      (Relation.create ~name:"p" ~schema:[ "a"; "rep" ] p_rows)
      (Circuit_to_fo.database nz)
  in
  let block_vars =
    List.mapi
      (fun i b ->
        (b, List.init b.Alternating.weight
              (fun j -> Printf.sprintf "x%d_%d" (i + 1) (j + 1))))
      blocks
  in
  let xs = List.concat_map snd block_vars in
  (* psi_i: the block's variables denote distinct input gates of V_i *)
  let psi (b, vars) =
    let rep = Term.const (gate_of_input (List.hd b.Alternating.vars)) in
    Fo.conj
      (List.concat_map
         (fun xj ->
           Fo.atom "p" [ Term.var xj; rep ]
           :: List.filter_map
                (fun xl ->
                  if xl = xj then None
                  else
                    Some (Fo.neg (Fo.atom "c" [ Term.var xj; Term.var xl ])))
                vars)
         vars)
  in
  let exists_side =
    List.filter (fun (b, _) -> b.Alternating.quantifier = Alternating.Q_exists)
      block_vars
  in
  let forall_side =
    List.filter (fun (b, _) -> b.Alternating.quantifier = Alternating.Q_forall)
      block_vars
  in
  let body =
    Fo.disj
      [
        Fo.conj
          (Circuit_to_fo.output_theta nz ~xs :: List.map psi exists_side);
        Fo.neg (Fo.conj (List.map psi forall_side));
      ]
  in
  let query =
    List.fold_right
      (fun (b, vars) acc ->
        match b.Alternating.quantifier with
        | Alternating.Q_exists -> Fo.exists vars acc
        | Alternating.Q_forall -> Fo.forall vars acc)
      block_vars body
  in
  (query, db)
