module Database = Paradb_relational.Database
module Relation = Paradb_relational.Relation
module Value = Paradb_relational.Value
module Graph = Paradb_graph.Graph
open Paradb_query

let reduce g ~k =
  let vertex_rows =
    List.map (fun v -> [| Value.Int v |]) (Graph.vertices g)
  in
  let edge_rows =
    List.concat_map
      (fun (u, v) ->
        let a = Value.Int u and b = Value.Int v in
        if u = v then [ [| a; b |] ] else [ [| a; b |]; [| b; a |] ])
      (Graph.edges g)
  in
  let db =
    Database.of_relations
      [
        Relation.create ~name:"v" ~schema:[ "x" ] vertex_rows;
        Relation.create ~name:"e" ~schema:[ "a"; "b" ] edge_rows;
      ]
  in
  let xs = List.init k (fun i -> Printf.sprintf "x%d" (i + 1)) in
  let y = Term.var "y" in
  let dominated =
    Fo.disj
      (List.concat_map
         (fun x ->
           [ Fo.eq y (Term.var x); Fo.atom "e" [ y; Term.var x ] ])
         xs)
  in
  (* the chosen x_i must be vertices (not merely any domain element) *)
  let chosen_are_vertices =
    Fo.conj (List.map (fun x -> Fo.atom "v" [ Term.var x ]) xs)
  in
  let query =
    Fo.exists xs
      (Fo.conj
         [ chosen_are_vertices;
           Fo.forall [ "y" ] (Fo.implies (Fo.atom "v" [ y ]) dominated) ])
  in
  (query, db)
