module Database = Paradb_relational.Database
module Relation = Paradb_relational.Relation
module Value = Paradb_relational.Value
open Paradb_query

let reduce db q =
  (* Encode the database: one surrogate id per tuple. *)
  let tup_rows = ref [] in
  let cell_rows = ref [] in
  let next_id = ref 0 in
  List.iter
    (fun rel ->
      let name = Value.Str (Relation.name rel) in
      Relation.iter
        (fun row ->
          let id = Value.Int !next_id in
          incr next_id;
          tup_rows := [| id; name |] :: !tup_rows;
          Array.iteri
            (fun p v -> cell_rows := [| id; Value.Int (p + 1); v |] :: !cell_rows)
            row)
        rel)
    (Database.relations db);
  let db' =
    Database.of_relations
      [
        Relation.create ~name:"tup" ~schema:[ "t"; "r" ] !tup_rows;
        Relation.create ~name:"cell" ~schema:[ "t"; "p"; "v" ] !cell_rows;
      ]
  in
  (* Rewrite the query: a fresh surrogate variable per atom.  The '$'
     prefix cannot appear in parsed variable names, so no capture. *)
  let counter = ref 0 in
  let body =
    List.concat_map
      (fun a ->
        let z =
          incr counter;
          Term.var (Printf.sprintf "$tup%d" !counter)
        in
        Atom.make "tup" [ z; Term.str a.Atom.rel ]
        :: List.mapi
             (fun p arg -> Atom.make "cell" [ z; Term.int (p + 1); arg ])
             a.Atom.args)
      q.Cq.body
  in
  let q' =
    Cq.make ~name:q.Cq.name ~constraints:q.Cq.constraints ~head:q.Cq.head body
  in
  (q', db')
