(** Theorem 1, upper bound for conjunctive queries under the
    variable-count parameter [v]: rewrite [(Q, d)] into [(Q', d')] where
    [|Q'| ≤ 2^v], reducing the parameter-[v] problem to the
    parameter-[q] problem.

    For every set [S] of variables realized by at least one atom, the new
    query has a single atom [R_S(x_{i1}, ..., x_{ir})] and the new
    database defines [R_S] as the intersection, over the original atoms
    [a] with variable set exactly [S], of the relations [P_a] of
    instantiations satisfying [a]. *)

(** The query must be constraint-free.  Works for queries with a head:
    the head is carried over unchanged (its variables appear in the body,
    hence in some [R_S]). *)
val reduce :
  Paradb_relational.Database.t -> Paradb_query.Cq.t ->
  Paradb_query.Cq.t * Paradb_relational.Database.t
