lib/reductions/circuit_to_fo.ml: Array Fo Fun Hashtbl Int List Paradb_query Paradb_relational Paradb_wsat Printf Term
