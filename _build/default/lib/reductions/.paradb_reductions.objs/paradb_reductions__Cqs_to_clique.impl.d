lib/reductions/cqs_to_clique.ml: Cq_to_wsat List Paradb_graph Paradb_wsat
