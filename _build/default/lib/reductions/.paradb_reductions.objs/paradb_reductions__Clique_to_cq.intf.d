lib/reductions/clique_to_cq.mli: Paradb_graph Paradb_query Paradb_relational
