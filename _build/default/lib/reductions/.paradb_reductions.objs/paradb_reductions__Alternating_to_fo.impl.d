lib/reductions/alternating_to_fo.ml: Array Circuit_to_fo Fo List Paradb_query Paradb_relational Paradb_wsat Printf Term
