lib/reductions/fixed_schema.mli: Paradb_query Paradb_relational
