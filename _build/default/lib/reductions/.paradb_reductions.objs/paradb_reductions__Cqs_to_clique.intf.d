lib/reductions/cqs_to_clique.mli: Paradb_graph Paradb_query Paradb_relational
