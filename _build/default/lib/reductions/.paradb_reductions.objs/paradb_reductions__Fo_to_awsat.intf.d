lib/reductions/fo_to_awsat.mli: Paradb_query Paradb_relational Paradb_wsat
