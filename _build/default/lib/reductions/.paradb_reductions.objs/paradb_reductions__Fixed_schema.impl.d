lib/reductions/fixed_schema.ml: Array Atom Cq List Paradb_query Paradb_relational Printf Term
