lib/reductions/dominating_to_fo.ml: Fo List Paradb_graph Paradb_query Paradb_relational Printf Term
