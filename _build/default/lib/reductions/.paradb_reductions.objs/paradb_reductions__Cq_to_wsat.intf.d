lib/reductions/cq_to_wsat.mli: Paradb_query Paradb_relational Paradb_wsat
