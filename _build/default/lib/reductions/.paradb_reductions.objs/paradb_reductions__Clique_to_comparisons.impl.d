lib/reductions/clique_to_comparisons.ml: Atom Constr Cq Paradb_graph Paradb_query Paradb_relational Printf Term
