lib/reductions/bounded_vars.ml: Array Atom Binding Cq List Paradb_query Paradb_relational String Term
