lib/reductions/bounded_vars.mli: Paradb_query Paradb_relational
