lib/reductions/hamiltonian_to_neq.ml: Atom Constr Cq List Paradb_core Paradb_graph Paradb_query Printf Term
