lib/reductions/cq_to_wsat.ml: Array Atom Binding Cq List Paradb_query Paradb_relational Paradb_wsat
