lib/reductions/positive_to_wformula.ml: Array Atom Fo Fun List Paradb_query Paradb_relational Paradb_wsat Term
