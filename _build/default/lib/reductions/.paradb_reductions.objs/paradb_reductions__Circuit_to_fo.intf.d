lib/reductions/circuit_to_fo.mli: Paradb_query Paradb_relational Paradb_wsat
