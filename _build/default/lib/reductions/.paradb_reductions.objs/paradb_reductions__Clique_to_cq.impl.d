lib/reductions/clique_to_cq.ml: Atom Binding Cq List Paradb_graph Paradb_query Paradb_relational Printf Term
