lib/reductions/wformula_to_positive.ml: Fo Fun List Option Paradb_query Paradb_relational Paradb_wsat Printf Term
