lib/reductions/fo_to_awsat.ml: Array Atom Fo List Paradb_query Paradb_relational Paradb_wsat Term
