(** Terms: variables or domain constants. *)

type t =
  | Var of string
  | Const of Paradb_relational.Value.t

val var : string -> t
val const : Paradb_relational.Value.t -> t
val int : int -> t
val str : string -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val is_var : t -> bool
val vars : t list -> string list

(** [apply binding t] replaces a variable by its bound value, if any. *)
val apply : (string -> Paradb_relational.Value.t option) -> t -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
