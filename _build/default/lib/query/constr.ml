module Value = Paradb_relational.Value

type op =
  | Neq
  | Lt
  | Le

type t = { op : op; lhs : Term.t; rhs : Term.t }

let make op lhs rhs = { op; lhs; rhs }
let neq lhs rhs = make Neq lhs rhs
let lt lhs rhs = make Lt lhs rhs
let le lhs rhs = make Le lhs rhs

let op_rank = function
  | Neq -> 0
  | Lt -> 1
  | Le -> 2

let compare a b =
  let c = Int.compare (op_rank a.op) (op_rank b.op) in
  if c <> 0 then c
  else
    let c = Term.compare a.lhs b.lhs in
    if c <> 0 then c else Term.compare a.rhs b.rhs

let equal a b = compare a b = 0
let vars c = Term.vars [ c.lhs; c.rhs ]

let constants c =
  List.filter_map
    (function Term.Const v -> Some v | Term.Var _ -> None)
    [ c.lhs; c.rhs ]

let is_neq c = c.op = Neq

let is_comparison c =
  match c.op with
  | Lt | Le -> true
  | Neq -> false

let eval_op op u v =
  match op with
  | Neq -> not (Value.equal u v)
  | Lt -> Value.compare u v < 0
  | Le -> Value.compare u v <= 0

let resolve binding t =
  match Binding.apply_term binding t with
  | Some v -> v
  | None ->
      invalid_arg
        ("Constr.holds: unbound variable " ^ Term.to_string t)

let holds binding c =
  eval_op c.op (resolve binding c.lhs) (resolve binding c.rhs)

let substitute binding c =
  let app = Term.apply (fun x -> Binding.find x binding) in
  { c with lhs = app c.lhs; rhs = app c.rhs }

let op_to_string = function
  | Neq -> "!="
  | Lt -> "<"
  | Le -> "<="

let pp ppf c =
  Format.fprintf ppf "%a %s %a" Term.pp c.lhs (op_to_string c.op) Term.pp c.rhs

let to_string c = Format.asprintf "%a" pp c
