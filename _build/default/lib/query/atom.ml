module Value = Paradb_relational.Value
module Tuple = Paradb_relational.Tuple

type t = { rel : string; args : Term.t list }

let make rel args =
  if rel = "" then invalid_arg "Atom.make: empty relation name";
  { rel; args }

let arity a = List.length a.args
let vars a = Term.vars a.args

let constants a =
  List.filter_map
    (function Term.Const v -> Some v | Term.Var _ -> None)
    a.args

let compare a b =
  let c = String.compare a.rel b.rel in
  if c <> 0 then c else List.compare Term.compare a.args b.args

let equal a b = compare a b = 0

let substitute binding a =
  { a with args = List.map (Term.apply (fun x -> Binding.find x binding)) a.args }

let matches a tuple =
  if Tuple.arity tuple <> arity a then None
  else
    let rec go i binding = function
      | [] -> Some binding
      | Term.Const c :: rest ->
          if Value.equal c tuple.(i) then go (i + 1) binding rest else None
      | Term.Var x :: rest -> (
          match Binding.extend x tuple.(i) binding with
          | Some binding -> go (i + 1) binding rest
          | None -> None)
    in
    go 0 Binding.empty a.args

let satisfied_by binding a tuple =
  if Tuple.arity tuple <> arity a then false
  else
    List.for_all2
      (fun term v ->
        match Binding.apply_term binding term with
        | Some w -> Value.equal v w
        | None -> false)
      a.args (Tuple.to_list tuple)

let pp ppf a =
  Format.fprintf ppf "%s(%a)" a.rel
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Term.pp)
    a.args

let to_string a = Format.asprintf "%a" pp a
