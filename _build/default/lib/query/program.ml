type t = { rules : Rule.t list; goal : string }

let dedup = Paradb_relational.Listx.dedup

let all_atoms p =
  List.concat_map (fun r -> r.Rule.head :: r.Rule.body) p.rules

let make rules ~goal =
  let p = { rules; goal } in
  let arities = Hashtbl.create 16 in
  List.iter
    (fun a ->
      let name = a.Atom.rel and ar = Atom.arity a in
      match Hashtbl.find_opt arities name with
      | None -> Hashtbl.add arities name ar
      | Some prev ->
          if prev <> ar then
            invalid_arg
              (Printf.sprintf
                 "Program.make: predicate %s used with arities %d and %d" name
                 prev ar))
    (all_atoms p);
  let idb = List.map (fun r -> r.Rule.head.Atom.rel) rules in
  if not (List.mem goal idb) then
    invalid_arg ("Program.make: goal " ^ goal ^ " is not an IDB predicate");
  p

let idb_predicates p = dedup (List.map (fun r -> r.Rule.head.Atom.rel) p.rules)

let edb_predicates p =
  let idb = idb_predicates p in
  dedup
    (List.filter_map
       (fun a -> if List.mem a.Atom.rel idb then None else Some a.Atom.rel)
       (List.concat_map (fun r -> r.Rule.body) p.rules))

let arity p name =
  let rec find = function
    | [] -> invalid_arg ("Program.arity: unknown predicate " ^ name)
    | a :: rest -> if a.Atom.rel = name then Atom.arity a else find rest
  in
  find (all_atoms p)

let max_idb_arity p =
  List.fold_left (fun acc name -> max acc (arity p name)) 0 (idb_predicates p)

let size p = List.fold_left (fun acc r -> acc + Rule.size r) 0 p.rules

let num_vars p =
  List.length (dedup (List.concat_map Rule.vars p.rules))

let pp ppf p =
  Format.fprintf ppf "@[<v>%% goal: %s" p.goal;
  List.iter (fun r -> Format.fprintf ppf "@,%a" Rule.pp r) p.rules;
  Format.fprintf ppf "@]"

let to_string p = Format.asprintf "%a" pp p
