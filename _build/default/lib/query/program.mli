(** Datalog programs: a set of rules plus a distinguished goal (output)
    predicate.  Predicates appearing in rule heads are IDB; all others are
    EDB (database) relations. *)

type t = { rules : Rule.t list; goal : string }

(** Checks that every predicate is used with a consistent arity and that
    the goal is an IDB predicate (or raises [Invalid_argument]). *)
val make : Rule.t list -> goal:string -> t

val idb_predicates : t -> string list
val edb_predicates : t -> string list
val arity : t -> string -> int

(** Max arity over all IDB predicates — the quantity that governs the
    fixed-arity W[1] membership argument of Section 4. *)
val max_idb_arity : t -> int

val size : t -> int
val num_vars : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
