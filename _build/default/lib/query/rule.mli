(** Datalog rules [H(t0) :- B1(t1), ..., Bs(ts)] (pure: no negation, no
    constraints — the language of Section 4's recursion discussion). *)

type t = { head : Atom.t; body : Atom.t list }

(** Raises [Invalid_argument] if a head variable does not occur in the
    body (range restriction). *)
val make : Atom.t -> Atom.t list -> t

val vars : t -> string list
val num_vars : t -> int
val size : t -> int
val is_fact : t -> bool

(** Nonrecursive view: a rule as a conjunctive query defining its head. *)
val to_cq : t -> Cq.t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
