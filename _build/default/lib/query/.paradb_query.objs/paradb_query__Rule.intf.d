lib/query/rule.mli: Atom Cq Format
