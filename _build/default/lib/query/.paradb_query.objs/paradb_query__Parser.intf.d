lib/query/parser.mli: Cq Fo Paradb_relational Program Rule
