lib/query/program.mli: Format Rule
