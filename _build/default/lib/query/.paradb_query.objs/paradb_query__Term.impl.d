lib/query/term.ml: Format List Paradb_relational String
