lib/query/fo.ml: Atom Binding Constr Cq Format List Paradb_relational Printf String Term
