lib/query/atom.ml: Array Binding Format List Paradb_relational String Term
