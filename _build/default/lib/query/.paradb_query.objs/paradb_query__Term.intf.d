lib/query/term.mli: Format Paradb_relational
