lib/query/parser.ml: Array Atom Constr Cq Fo Format Hashtbl List Paradb_relational Printf Program Rule String Term
