lib/query/ineq_formula.mli: Binding Constr Format Paradb_relational
