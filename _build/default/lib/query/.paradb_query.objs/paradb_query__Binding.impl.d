lib/query/binding.ml: Format List Map Paradb_relational String Term
