lib/query/cq.ml: Array Atom Binding Constr Format List Paradb_relational Printf String Term
