lib/query/binding.mli: Format Paradb_relational Term
