lib/query/constr.mli: Binding Format Paradb_relational Term
