lib/query/rule.ml: Atom Cq Format List Paradb_relational String
