lib/query/program.ml: Atom Format Hashtbl List Paradb_relational Printf Rule
