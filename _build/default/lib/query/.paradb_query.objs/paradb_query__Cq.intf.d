lib/query/cq.mli: Atom Binding Constr Format Paradb_relational Term
