lib/query/fact_format.ml: Array Buffer List Paradb_relational Parser String
