lib/query/fo.mli: Atom Binding Cq Format Term
