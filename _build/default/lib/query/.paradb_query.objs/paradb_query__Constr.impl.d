lib/query/constr.ml: Binding Format Int List Paradb_relational Term
