lib/query/ineq_formula.ml: Binding Constr Format List Paradb_relational
