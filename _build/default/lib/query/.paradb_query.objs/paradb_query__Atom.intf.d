lib/query/atom.mli: Binding Format Paradb_relational Term
