lib/query/fact_format.mli: Paradb_relational
