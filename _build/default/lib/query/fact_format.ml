module Database = Paradb_relational.Database
module Relation = Paradb_relational.Relation
module Value = Paradb_relational.Value

let lexes_as_lident s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' -> true | _ -> false)
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '\'' -> true
         | _ -> false)
       s
  && not (List.mem s [ "exists"; "forall"; "true"; "false" ])

let value_to_syntax = function
  | Value.Int i -> string_of_int i
  | Value.Str s ->
      (* a string of digits must be quoted or it would re-read as Int *)
      if lexes_as_lident s && int_of_string_opt s = None then s
      else "\"" ^ s ^ "\""

let to_string db =
  let buf = Buffer.create 1024 in
  List.iter
    (fun rel ->
      Relation.iter
        (fun row ->
          Buffer.add_string buf (Relation.name rel);
          Buffer.add_char buf '(';
          Array.iteri
            (fun i v ->
              if i > 0 then Buffer.add_string buf ", ";
              Buffer.add_string buf (value_to_syntax v))
            row;
          Buffer.add_string buf ").\n")
        rel)
    (Database.relations db);
  Buffer.contents buf

let print oc db = output_string oc (to_string db)
let roundtrip db = Parser.parse_facts (to_string db)
