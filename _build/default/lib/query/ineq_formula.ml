type t =
  | True
  | False
  | Atom of Constr.t
  | And of t list
  | Or of t list

let atom c = Atom c

let conj = function
  | [] -> True
  | [ f ] -> f
  | fs -> And fs

let disj = function
  | [] -> False
  | [ f ] -> f
  | fs -> Or fs

let of_conjunction cs = conj (List.map atom cs)

let rec atoms = function
  | True | False -> []
  | Atom c -> [ c ]
  | And fs | Or fs -> List.concat_map atoms fs

let dedup = Paradb_relational.Listx.dedup

let vars f = dedup (List.concat_map Constr.vars (atoms f))

let constants f =
  let module VS = Paradb_relational.Value.Set in
  VS.elements
    (List.fold_left
       (fun acc c ->
         List.fold_left (fun acc v -> VS.add v acc) acc (Constr.constants c))
       VS.empty (atoms f))

let neq_only f = List.for_all Constr.is_neq (atoms f)

let rec holds binding = function
  | True -> true
  | False -> false
  | Atom c -> Constr.holds binding c
  | And fs -> List.for_all (holds binding) fs
  | Or fs -> List.exists (holds binding) fs

let holds_hashed h binding f =
  let resolve t =
    match Binding.apply_term binding t with
    | Some v -> h v
    | None -> invalid_arg "Ineq_formula.holds_hashed: unbound variable"
  in
  let rec go = function
    | True -> true
    | False -> false
    | Atom c -> Constr.eval_op c.Constr.op (resolve c.Constr.lhs) (resolve c.Constr.rhs)
    | And fs -> List.for_all go fs
    | Or fs -> List.exists go fs
  in
  go f

let rec size = function
  | True | False -> 1
  | Atom _ -> 3
  | And fs | Or fs -> List.fold_left (fun acc f -> acc + size f) 1 fs

let rec pp ppf = function
  | True -> Format.pp_print_string ppf "true"
  | False -> Format.pp_print_string ppf "false"
  | Atom c -> Constr.pp ppf c
  | And fs ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " & ")
           pp)
        fs
  | Or fs ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " | ")
           pp)
        fs

let to_string f = Format.asprintf "%a" pp f
