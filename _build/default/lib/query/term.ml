module Value = Paradb_relational.Value

type t =
  | Var of string
  | Const of Value.t

let var x = Var x
let const v = Const v
let int i = Const (Value.int i)
let str s = Const (Value.str s)

let compare a b =
  match a, b with
  | Var x, Var y -> String.compare x y
  | Var _, Const _ -> -1
  | Const _, Var _ -> 1
  | Const u, Const v -> Value.compare u v

let equal a b = compare a b = 0

let is_var = function
  | Var _ -> true
  | Const _ -> false

let vars terms =
  let rec go seen acc = function
    | [] -> List.rev acc
    | Var x :: rest ->
        if List.mem x seen then go seen acc rest
        else go (x :: seen) (x :: acc) rest
    | Const _ :: rest -> go seen acc rest
  in
  go [] [] terms

let apply binding = function
  | Var x as t -> ( match binding x with Some v -> Const v | None -> t)
  | Const _ as t -> t

let pp ppf = function
  | Var x -> Format.pp_print_string ppf x
  | Const v -> Value.pp ppf v

let to_string t = Format.asprintf "%a" pp t
