type t = { head : Atom.t; body : Atom.t list }

let make head body =
  let body_vars = List.concat_map Atom.vars body in
  List.iter
    (fun x ->
      if not (List.mem x body_vars) then
        invalid_arg
          ("Rule.make: head variable " ^ x ^ " not range-restricted"))
    (Atom.vars head);
  { head; body }

let dedup = Paradb_relational.Listx.dedup

let vars r = dedup (List.concat_map Atom.vars (r.head :: r.body))
let num_vars r = List.length (vars r)

let size r =
  List.fold_left (fun acc a -> acc + 1 + Atom.arity a) 0 (r.head :: r.body)

let is_fact r = r.body = []

let to_cq r =
  Cq.make ~name:r.head.Atom.rel ~head:r.head.Atom.args r.body

let equal a b =
  Atom.equal a.head b.head && List.equal Atom.equal a.body b.body

let pp ppf r =
  if is_fact r then Format.fprintf ppf "%a." Atom.pp r.head
  else
    Format.fprintf ppf "%a :- %s." Atom.pp r.head
      (String.concat ", " (List.map Atom.to_string r.body))

let to_string r = Format.asprintf "%a" pp r
