(** Variable bindings: partial maps from variable names to domain values.
    These are the "instantiations" τ of the paper. *)

type t

val empty : t
val is_empty : t -> bool
val find : string -> t -> Paradb_relational.Value.t option
val bind : string -> Paradb_relational.Value.t -> t -> t
val mem : string -> t -> bool
val cardinal : t -> int
val bindings : t -> (string * Paradb_relational.Value.t) list
val of_list : (string * Paradb_relational.Value.t) list -> t
val equal : t -> t -> bool

(** [extend x v b] is [Some (bind x v b)] if [x] is unbound or already
    bound to [v]; [None] on a conflicting binding. *)
val extend : string -> Paradb_relational.Value.t -> t -> t option

(** [merge a b] unions two bindings, [None] on conflict. *)
val merge : t -> t -> t option

(** [apply_term b t] resolves a term to a value; [None] if an unbound
    variable. *)
val apply_term : t -> Term.t -> Paradb_relational.Value.t option

(** [image b vars] — the distinct values assigned to [vars] (the paper's
    [τ(V1)]). *)
val image : t -> string list -> Paradb_relational.Value.Set.t

val pp : Format.formatter -> t -> unit
