(** Serialization of databases as fact files — the inverse of
    {!Parser.parse_facts}.

    Values are written so that the parser reads them back identically:
    integers bare, strings bare when they lex as lowercase identifiers
    and quoted otherwise. *)

val value_to_syntax : Paradb_relational.Value.t -> string

(** One fact per line: [name(v1, v2).]. *)
val to_string : Paradb_relational.Database.t -> string

val print : out_channel -> Paradb_relational.Database.t -> unit

(** [roundtrip db = Parser.parse_facts (to_string db)] — exposed because
    the parser names attributes positionally, so schemas come back as
    [a0, a1, ...]; relation contents are preserved exactly. *)
val roundtrip : Paradb_relational.Database.t -> Paradb_relational.Database.t
