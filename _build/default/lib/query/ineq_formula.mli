(** Monotone Boolean combinations of inequality atoms, built with ∧ / ∨ —
    the Section-5 extension of Theorem 2 ("instead of a conjunction of
    inequalities in the body of the query, we have an arbitrary Boolean
    formula φ built from inequality atoms using ∨ and ∧"). *)

type t =
  | True
  | False
  | Atom of Constr.t
  | And of t list
  | Or of t list

val atom : Constr.t -> t
val conj : t list -> t
val disj : t list -> t

(** Conjunction of plain [≠] atoms. *)
val of_conjunction : Constr.t list -> t

val atoms : t -> Constr.t list
val vars : t -> string list
val constants : t -> Paradb_relational.Value.t list

(** All atoms are [≠] atoms (required by the Theorem-2 extension). *)
val neq_only : t -> bool

val holds : Binding.t -> t -> bool

(** [holds_hashed h binding f] evaluates the formula with every term first
    mapped through [h] (the color-coding evaluation: since [h u ≠ h v]
    implies [u ≠ v] and the formula is monotone, a hashed satisfaction
    implies a genuine one). *)
val holds_hashed :
  (Paradb_relational.Value.t -> Paradb_relational.Value.t) ->
  Binding.t -> t -> bool

val size : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
