(** Constraint atoms between terms: the paper's inequality atoms [x ≠ y],
    [x ≠ c] (Theorem 2) and comparison atoms [x < y], [x ≤ y]
    (Theorem 3 / Klug). *)

type op =
  | Neq  (** [≠] — the tractable extension of Theorem 2 *)
  | Lt   (** [<] — strict comparison; W[1]-hard by Theorem 3 *)
  | Le   (** [≤] — weak comparison *)

type t = { op : op; lhs : Term.t; rhs : Term.t }

val make : op -> Term.t -> Term.t -> t
val neq : Term.t -> Term.t -> t
val lt : Term.t -> Term.t -> t
val le : Term.t -> Term.t -> t
val compare : t -> t -> int
val equal : t -> t -> bool

(** Distinct variables of the constraint (0, 1 or 2). *)
val vars : t -> string list

val constants : t -> Paradb_relational.Value.t list
val is_neq : t -> bool
val is_comparison : t -> bool

(** [holds binding c] evaluates the constraint; unbound variables raise
    [Invalid_argument].  Order on values is [Value.compare] (total). *)
val holds : Binding.t -> t -> bool

(** Ground evaluation on two values. *)
val eval_op : op -> Paradb_relational.Value.t -> Paradb_relational.Value.t -> bool

val substitute : Binding.t -> t -> t
val pp : Format.formatter -> t -> unit
val to_string : t -> string
