module Value = Paradb_relational.Value
module String_map = Map.Make (String)

type t = Value.t String_map.t

let empty = String_map.empty
let is_empty = String_map.is_empty
let find x b = String_map.find_opt x b
let bind x v b = String_map.add x v b
let mem x b = String_map.mem x b
let cardinal = String_map.cardinal
let bindings b = String_map.bindings b

let of_list l =
  List.fold_left (fun acc (x, v) -> String_map.add x v acc) empty l

let equal = String_map.equal Value.equal

let extend x v b =
  match String_map.find_opt x b with
  | None -> Some (String_map.add x v b)
  | Some w -> if Value.equal v w then Some b else None

let merge a b =
  String_map.fold
    (fun x v acc ->
      match acc with
      | None -> None
      | Some m -> extend x v m)
    b (Some a)

let apply_term b = function
  | Term.Var x -> find x b
  | Term.Const v -> Some v

let image b vars =
  List.fold_left
    (fun acc x ->
      match find x b with
      | Some v -> Value.Set.add v acc
      | None -> acc)
    Value.Set.empty vars

let pp ppf b =
  Format.fprintf ppf "{%s}"
    (String.concat ", "
       (List.map
          (fun (x, v) -> x ^ " := " ^ Value.to_string v)
          (bindings b)))
