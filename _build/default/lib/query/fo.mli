(** First-order queries (relational calculus): the most expressive language
    in Theorem 1's classification.

    Positive queries are the [Not]/[Forall]-free fragment; conjunctive
    queries are additionally [Or]-free.  The parameter [v] counts distinct
    variable *names* — reused quantified variables count once, which is
    exactly why prenexing (which renames variables apart) does not preserve
    [v] (Section 4's discussion). *)

type t =
  | True
  | False
  | Rel of Atom.t
  | Eq of Term.t * Term.t
  | Not of t
  | And of t list
  | Or of t list
  | Exists of string list * t
  | Forall of string list * t

val rel : Atom.t -> t
val atom : string -> Term.t list -> t
val eq : Term.t -> Term.t -> t
val neg : t -> t
val conj : t list -> t
val disj : t list -> t
val exists : string list -> t -> t
val forall : string list -> t -> t
val implies : t -> t -> t

val free_vars : t -> string list

(** All distinct variable names, free and bound: the parameter [v]. *)
val all_vars : t -> string list

val num_vars : t -> int

(** Symbol-count size: the parameter [q]. *)
val size : t -> int

val is_sentence : t -> bool

(** No [Not], no [Forall]: a positive query. *)
val is_positive : t -> bool

(** Additionally no [Or]: (the formula form of) a conjunctive query. *)
val is_conjunctive : t -> bool

(** Substitution of constants for *free* variables (capture-safe because
    the substitutes are constants; shadowed occurrences are untouched). *)
val substitute : Binding.t -> t -> t

(** Rename all bound variables to globally fresh names ["#1", "#2", ...].
    Free variables are untouched.  After this, no variable is quantified
    twice and no bound variable shadows a free one. *)
val rename_apart : t -> t

type quantifier =
  | Q_exists
  | Q_forall

(** [prenex f] = (prefix, matrix): classical prenex normal form after
    [rename_apart]; the matrix is quantifier-free.  Negations are pushed
    to atoms (NNF) first. *)
val prenex : t -> (quantifier * string) list * t

(** Negation normal form: negations pushed to atoms. *)
val nnf : t -> t

(** [positive_to_cqs f] — Theorem 1's positive-query upper bound: a closed
    positive query is equivalent to a union of (exponentially many in [q])
    Boolean conjunctive queries.  Equality atoms are eliminated by
    unification; unsatisfiable disjuncts are dropped.  Raises
    [Invalid_argument] if [f] is not a closed positive formula. *)
val positive_to_cqs : t -> Cq.t list

(** View a constraint-free CQ as a closed FO sentence (its head variables
    existentially quantified) — used to cross-check evaluators. *)
val of_boolean_cq : Cq.t -> t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
