(** Relational atoms [R(t1, ..., tr)]. *)

type t = { rel : string; args : Term.t list }

val make : string -> Term.t list -> t
val arity : t -> int

(** Distinct variables in argument order. *)
val vars : t -> string list

val constants : t -> Paradb_relational.Value.t list
val compare : t -> t -> int
val equal : t -> t -> bool

(** [substitute bind a] replaces bound variables by constants. *)
val substitute : Binding.t -> t -> t

(** [matches a tuple] — the instantiation of [a]'s variables that maps the
    atom onto [tuple], if the constants and repeated variables are
    consistent ("consistent" in the sense of Theorem 1's 2CNF
    construction); [None] otherwise. *)
val matches : t -> Paradb_relational.Tuple.t -> Binding.t option

(** [satisfied_by binding a tuple] — the fully instantiated atom equals
    the tuple. *)
val satisfied_by : Binding.t -> t -> Paradb_relational.Tuple.t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string
