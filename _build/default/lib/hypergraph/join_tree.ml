module String_set = Hypergraph.String_set

type t = {
  node_vars : String_set.t array;
  parent : int array;
  children : int list array;
  root : int;
  bottom_up : int array;
  top_down : int array;
  subtree_vars : String_set.t array;
}

let n_nodes t = Array.length t.node_vars

let of_hypergraph h =
  let n = Hypergraph.n_edges h in
  if n = 0 then None
  else
    let parent, alive = Hypergraph.gyo h in
    let survivors =
      List.filter (fun i -> alive.(i)) (List.init n Fun.id)
    in
    match survivors with
    | [ root ] ->
        let children = Array.make n [] in
        Array.iteri
          (fun i p -> if p >= 0 then children.(p) <- i :: children.(p))
          parent;
        (* Post-order DFS from the root: children before parents. *)
        let order = ref [] in
        let rec dfs i =
          List.iter dfs children.(i);
          order := i :: !order
        in
        dfs root;
        let top_down = Array.of_list !order in
        let bottom_up = Array.of_list (List.rev !order) in
        let subtree_vars = Array.make n String_set.empty in
        Array.iter
          (fun i ->
            subtree_vars.(i) <-
              List.fold_left
                (fun acc c -> String_set.union acc subtree_vars.(c))
                h.Hypergraph.edges.(i) children.(i))
          bottom_up;
        Some
          {
            node_vars = Array.copy h.Hypergraph.edges;
            parent;
            children;
            root;
            bottom_up;
            top_down;
            subtree_vars;
          }
    | _ -> None

let of_cq q = of_hypergraph (Hypergraph.of_cq q)

let is_valid t =
  let n = n_nodes t in
  (* Structure: exactly one root, parent links acyclic and covering. *)
  let visited = Array.make n false in
  Array.iter (fun i -> visited.(i) <- true) t.bottom_up;
  Array.for_all Fun.id visited
  && t.parent.(t.root) = -1
  &&
  (* Running intersection: for each variable, the nodes containing it form
     a connected subtree — exactly one of them has a parent outside the
     set. *)
  let vars =
    Array.fold_left String_set.union String_set.empty t.node_vars
  in
  String_set.for_all
    (fun v ->
      let holds i = String_set.mem v t.node_vars.(i) in
      let tops = ref 0 in
      for i = 0 to n - 1 do
        if holds i && (t.parent.(i) < 0 || not (holds t.parent.(i))) then
          incr tops
      done;
      !tops = 1)
    vars

let to_dot t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph join_tree {\n  rankdir=BT;\n";
  Array.iteri
    (fun i vars ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"{%s}\"];\n" i
           (String.concat "," (String_set.elements vars))))
    t.node_vars;
  Array.iteri
    (fun i parent ->
      if parent >= 0 then
        Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" i parent))
    t.parent;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let pp ppf t =
  Format.fprintf ppf "@[<v>join tree (root %d)" t.root;
  Array.iteri
    (fun i vars ->
      Format.fprintf ppf "@,  node %d: {%s} parent %d" i
        (String.concat "," (String_set.elements vars))
        t.parent.(i))
    t.node_vars;
  Format.fprintf ppf "@]"
