lib/hypergraph/hypergraph.ml: Array Format List Paradb_query Set String
