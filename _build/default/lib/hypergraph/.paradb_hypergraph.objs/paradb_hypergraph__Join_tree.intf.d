lib/hypergraph/join_tree.mli: Format Hypergraph Paradb_query
