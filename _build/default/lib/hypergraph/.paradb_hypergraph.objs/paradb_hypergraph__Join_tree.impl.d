lib/hypergraph/join_tree.ml: Array Buffer Format Fun Hypergraph List Printf String
