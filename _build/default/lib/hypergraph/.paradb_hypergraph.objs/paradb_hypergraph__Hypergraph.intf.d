lib/hypergraph/hypergraph.mli: Format Paradb_query Set
