module String_set = Set.Make (String)

type t = { edges : String_set.t array }

let make edge_lists =
  { edges = Array.of_list (List.map String_set.of_list edge_lists) }

let of_cq q =
  make (List.map Paradb_query.Atom.vars (Paradb_query.Cq.relational_atoms q))

let n_edges h = Array.length h.edges

let vertices h =
  Array.fold_left String_set.union String_set.empty h.edges

(* GYO ear removal.  Edge [i] is an ear if the set of its vertices that
   also occur in some *other* alive edge is contained in a single alive
   edge [j]; removing [i] records [parent.(i) = j].  One removal per scan
   keeps the bookkeeping simple; queries are small. *)
let gyo h =
  let n = n_edges h in
  let parent = Array.make n (-1) in
  let alive = Array.make n true in
  let occurs_elsewhere i v =
    let found = ref false in
    Array.iteri
      (fun j e -> if j <> i && alive.(j) && String_set.mem v e then found := true)
      h.edges;
    !found
  in
  let try_remove_one () =
    let removed = ref false in
    let i = ref 0 in
    while (not !removed) && !i < n do
      if alive.(!i) then begin
        let shared = String_set.filter (occurs_elsewhere !i) h.edges.(!i) in
        (* Find a distinct alive edge containing all shared vertices. *)
        let j = ref 0 in
        while (not !removed) && !j < n do
          if !j <> !i && alive.(!j) && String_set.subset shared h.edges.(!j)
          then begin
            parent.(!i) <- !j;
            alive.(!i) <- false;
            removed := true
          end;
          incr j
        done
      end;
      incr i
    done;
    !removed
  in
  while try_remove_one () do
    ()
  done;
  (parent, alive)

let components h =
  let n = n_edges h in
  let comp = Array.make n (-1) in
  let count = ref 0 in
  let intersects i j =
    not (String_set.is_empty (String_set.inter h.edges.(i) h.edges.(j)))
  in
  let rec dfs i c =
    if comp.(i) < 0 then begin
      comp.(i) <- c;
      for j = 0 to n - 1 do
        if comp.(j) < 0 && intersects i j then dfs j c
      done
    end
  in
  for i = 0 to n - 1 do
    if comp.(i) < 0 then begin
      dfs i !count;
      incr count
    end
  done;
  (comp, !count)

(* Acyclic iff GYO reduces to at most one alive edge.  This works across
   connected components too: once a component is down to a single edge,
   its remaining shared-vertex set is empty, so it is absorbed into any
   other alive edge (a cross-component parent link is a valid join-tree
   edge because the components share no variables). *)
let is_acyclic h =
  let _, alive = gyo h in
  Array.fold_left (fun acc a -> if a then acc + 1 else acc) 0 alive <= 1

let pp ppf h =
  Format.fprintf ppf "{%s}"
    (String.concat "; "
       (Array.to_list
          (Array.map
             (fun e -> String.concat "," (String_set.elements e))
             h.edges)))
