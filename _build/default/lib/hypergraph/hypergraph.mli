(** Query hypergraphs and the GYO acyclicity test.

    For a conjunctive query, the hypergraph has the query's variables as
    nodes and one hyperedge per relational atom, containing the variables
    occurring in that atom (Section 5).  [Neq]/comparison atoms are *not*
    included — that is the whole point of Theorem 2. *)

module String_set : Set.S with type elt = string

type t = { edges : String_set.t array }

val make : string list list -> t

(** One hyperedge per relational atom of the query body. *)
val of_cq : Paradb_query.Cq.t -> t

val n_edges : t -> int
val vertices : t -> String_set.t

(** GYO ear removal.  [gyo h] returns [(parent, alive)]: [parent.(i)] is
    the edge that absorbed ear [i] ([-1] if never absorbed), [alive.(i)]
    tells whether the edge survived the reduction.  The hypergraph is
    acyclic iff at most one edge survives (single-edge components get
    absorbed across components, which is a valid join-forest link). *)
val gyo : t -> int array * bool array

val is_acyclic : t -> bool

(** Connected components by shared vertices: [component.(i)] for each
    edge, plus the number of components.  Edges with no vertices are
    singleton components. *)
val components : t -> int array * int

val pp : Format.formatter -> t -> unit
