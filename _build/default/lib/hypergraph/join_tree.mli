(** Rooted join trees for acyclic queries.

    Nodes are the hyperedges (= relational atoms, by body position) of the
    query hypergraph; for every variable, the nodes containing it form a
    connected subtree (the running-intersection property the paper's
    Lemma 1 leans on). *)

module String_set = Hypergraph.String_set

type t = {
  node_vars : String_set.t array;  (** [U_j]: variables of atom [j] *)
  parent : int array;              (** [-1] at the root *)
  children : int list array;
  root : int;
  bottom_up : int array;           (** every node; children before parents *)
  top_down : int array;            (** reverse of [bottom_up] *)
  subtree_vars : String_set.t array;  (** [at(T[j])]: variables in the subtree *)
}

(** [None] if the hypergraph is cyclic or has no edges. *)
val of_hypergraph : Hypergraph.t -> t option

(** Join tree of the relational atoms of a query. *)
val of_cq : Paradb_query.Cq.t -> t option

val n_nodes : t -> int

(** Check the running-intersection property (used by tests and by
    qcheck properties). *)
val is_valid : t -> bool

val pp : Format.formatter -> t -> unit

(** GraphViz rendering (nodes labelled by their variable sets). *)
val to_dot : t -> string
