lib/eval/fo_naive.ml: Array Atom Binding Fo List Paradb_query Paradb_relational Printf Term
