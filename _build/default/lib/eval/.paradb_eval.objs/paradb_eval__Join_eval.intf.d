lib/eval/join_eval.mli: Paradb_query Paradb_relational
