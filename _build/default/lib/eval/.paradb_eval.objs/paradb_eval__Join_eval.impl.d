lib/eval/join_eval.ml: Array Atom Binding Constr Cq Int List Paradb_query Paradb_relational Printf Term
