lib/eval/fo_naive.mli: Paradb_query Paradb_relational
