lib/eval/cq_naive.mli: Paradb_query Paradb_relational
