lib/eval/cq_naive.ml: Atom Binding Constr Cq List Paradb_query Paradb_relational Printf Term
