(** Join-based conjunctive-query evaluation: materialize one relation per
    atom, then join greedily (smallest first, preferring shared
    attributes), applying constraint atoms as selections as soon as their
    variables are present.

    Worst-case intermediate results are still [n^{O(q)}] — this is a
    realistic query-processor baseline, not an asymptotic improvement
    (only Theorem 2's engine achieves that, and only for acyclic+[≠]) —
    but it cross-checks the other evaluators and feeds the join-order
    ablation. *)

type join_algorithm =
  | Hash_join
  | Sort_merge

(** [evaluate db q] — the output relation, as {!Cq_naive.evaluate}. *)
val evaluate :
  ?algorithm:join_algorithm ->
  Paradb_relational.Database.t -> Paradb_query.Cq.t ->
  Paradb_relational.Relation.t

val is_satisfiable :
  ?algorithm:join_algorithm ->
  Paradb_relational.Database.t -> Paradb_query.Cq.t -> bool

val decide :
  ?algorithm:join_algorithm ->
  Paradb_relational.Database.t -> Paradb_query.Cq.t ->
  Paradb_relational.Tuple.t -> bool
