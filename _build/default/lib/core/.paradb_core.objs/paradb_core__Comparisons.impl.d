lib/core/comparisons.ml: Array Atom Constr Cq Engine List Paradb_eval Paradb_graph Paradb_hypergraph Paradb_query Paradb_relational Printf Term
