lib/core/comparisons.mli: Paradb_query Paradb_relational
