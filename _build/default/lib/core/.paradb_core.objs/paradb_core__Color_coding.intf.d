lib/core/color_coding.mli: Hashing Paradb_graph Paradb_query Paradb_relational
