lib/core/hashing.ml: Array Fun Int List Paradb_relational Random Seq Set
