lib/core/engine.ml: Array Binding Constr Cq Hashing Ineq Ineq_formula List Logs Paradb_hypergraph Paradb_query Paradb_relational Paradb_yannakakis Printf Seq Term
