lib/core/hashing.mli: Paradb_relational Seq
