lib/core/color_coding.ml: Array Atom Constr Cq Engine Fun Hashing Hashtbl List Paradb_graph Paradb_query Paradb_relational Printf Random Term
