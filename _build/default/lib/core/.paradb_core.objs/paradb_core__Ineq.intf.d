lib/core/ineq.mli: Format Paradb_query
