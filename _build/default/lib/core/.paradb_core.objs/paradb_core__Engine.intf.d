lib/core/engine.mli: Hashing Paradb_query Paradb_relational
