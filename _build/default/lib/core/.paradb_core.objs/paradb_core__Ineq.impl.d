lib/core/ineq.ml: Atom Constr Cq Format List Paradb_query Paradb_relational String Term
