open Paradb_query

type t = {
  i1 : Constr.t list;
  i2 : Constr.t list;
  v1 : string list;
  k : int;
}

let dedup = Paradb_relational.Listx.dedup

let partition q =
  if not (Cq.neq_only q) then
    invalid_arg "Ineq.partition: query has comparison constraints";
  let atom_var_sets = List.map Atom.vars (Cq.relational_atoms q) in
  let cooccur x y =
    List.exists (fun vs -> List.mem x vs && List.mem y vs) atom_var_sets
  in
  let i1, i2 =
    List.partition
      (fun c ->
        match c.Constr.lhs, c.Constr.rhs with
        | Term.Var x, Term.Var y -> not (cooccur x y)
        | _ -> false)
      (Cq.neq_constraints q)
  in
  let v1 = dedup (List.concat_map Constr.vars i1) in
  { i1; i2; v1; k = List.length v1 }

let i1_pairs t =
  List.map
    (fun c ->
      match c.Constr.lhs, c.Constr.rhs with
      | Term.Var x, Term.Var y -> (x, y)
      | _ -> assert false)
    t.i1

let i2_filter t atom_vars binding =
  List.for_all
    (fun c ->
      if List.for_all (fun x -> List.mem x atom_vars) (Constr.vars c) then
        Constr.holds binding c
      else true)
    t.i2

let pp ppf t =
  Format.fprintf ppf "I1 = {%s}; I2 = {%s}; V1 = {%s} (k = %d)"
    (String.concat ", " (List.map Constr.to_string t.i1))
    (String.concat ", " (List.map Constr.to_string t.i2))
    (String.concat ", " t.v1)
    t.k
