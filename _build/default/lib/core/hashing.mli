(** Hash families for the color-coding step of Theorem 2.

    The engine needs functions [h : D → [0..range-1]] such that, whenever
    a satisfying instantiation exists, some [h] in the family is injective
    on the (at most [k]) values that instantiation assigns to the
    variables of [I1].  Three strategies:

    - {b Random_trials} — the paper's randomized driver: [c·e^k]
      independent uniform colorings give failure probability at most
      [e^-c] (each trial succeeds with probability [ℓ!/ℓ^k ≥ e^-k]).
    - {b Multiplicative_sweep} — deterministic and provably k-perfect:
      [h_a(x) = ((a·code x) mod p) mod k²] for every multiplier
      [a ∈ [1, p-1]], [p] prime > |D|.  For any k-set, at least half the
      multipliers are injective (FKS-style pairwise-collision counting),
      so the sweep is complete.  Size O(|D|) instead of the
      Alon–Yuster–Zwick [2^O(k) log |D|] — the substitution documented in
      DESIGN.md.
    - {b Exhaustive} — all [k^|D|] functions; only for tiny test domains.
*)

type fn = {
  range : int;
  apply : Paradb_relational.Value.t -> int;
}

type family =
  | Random_trials of { trials : int; seed : int }
  | Multiplicative_sweep
  | Exhaustive

(** [c·e^k] rounded up — the paper's trial count for failure probability
    [e^-c]. *)
val default_trials : c:float -> k:int -> int

(** [functions family ~domain ~k] — the (lazy) sequence of hash functions
    to try.  [domain] is the active domain; [k] the number of values that
    must be separated.  For [k <= 1] a single constant function is
    returned regardless of the family. *)
val functions :
  family -> domain:Paradb_relational.Value.t list -> k:int -> fn Seq.t

(** [is_injective_on f values] — does [f] separate the given values? *)
val is_injective_on : fn -> Paradb_relational.Value.t list -> bool

(** Smallest prime strictly greater than [n] (trial division; domains are
    database-sized). *)
val next_prime : int -> int
