(** The partition of a query's [≠] atoms that drives Theorem 2.

    [I1]: atoms [x ≠ y] whose two variables never occur together in a
    relational atom — these are the "hyperedges" that would destroy
    acyclicity and are instead handled by hashing.
    [I2]: the rest — [x ≠ c] atoms and [x ≠ y] with both variables in a
    common relational atom — these are pushed into the per-atom
    selections. *)

type t = {
  i1 : Paradb_query.Constr.t list;
  i2 : Paradb_query.Constr.t list;
  v1 : string list;  (** variables occurring in [I1], the paper's [V1] *)
  k : int;           (** [|V1|] — the hash range *)
}

(** Raises [Invalid_argument] if the query has non-[≠] constraints. *)
val partition : Paradb_query.Cq.t -> t

(** The [I1] pairs as variable pairs. *)
val i1_pairs : t -> (string * string) list

(** [i2_filter t atom_vars] — the predicate enforcing, on one atom's
    instantiations, every [I2] constraint whose variables all occur in
    that atom (steps (iii)/(iv) of the [S_j] construction). *)
val i2_filter :
  t -> string list -> Paradb_query.Binding.t -> bool

val pp : Format.formatter -> t -> unit
