module Value = Paradb_relational.Value

type fn = {
  range : int;
  apply : Value.t -> int;
}

type family =
  | Random_trials of { trials : int; seed : int }
  | Multiplicative_sweep
  | Exhaustive

let default_trials ~c ~k =
  max 1 (int_of_float (ceil (c *. exp (float_of_int k))))

let next_prime n =
  let is_prime m =
    if m < 2 then false
    else
      let rec go d = d * d > m || (m mod d <> 0 && go (d + 1)) in
      go 2
  in
  let rec go m = if is_prime m then m else go (m + 1) in
  go (max 2 (n + 1))

(* Dictionary-encode the domain so every value has a distinct code in
   [0 .. |D|-1]. *)
let encode domain =
  let table = Value.Table.create (List.length domain) in
  List.iteri
    (fun i v -> if not (Value.Table.mem table v) then Value.Table.add table v i)
    domain;
  fun v ->
    match Value.Table.find_opt table v with
    | Some c -> c
    | None -> invalid_arg ("Hashing: value outside domain: " ^ Value.to_string v)

let constant_fn = { range = 1; apply = (fun _ -> 0) }

let random_functions ~trials ~seed ~domain ~k =
  (* One sub-seed per trial makes the sequence replayable: re-traversing
     yields the same functions. *)
  let one trial =
    let rng = Random.State.make [| seed; k; trial |] in
    let table = Value.Table.create (List.length domain) in
    List.iter
      (fun v ->
        if not (Value.Table.mem table v) then
          Value.Table.add table v (Random.State.int rng k))
      domain;
    {
      range = k;
      apply =
        (fun v ->
          match Value.Table.find_opt table v with
          | Some c -> c
          | None ->
              invalid_arg
                ("Hashing: value outside domain: " ^ Value.to_string v));
    }
  in
  Seq.map one (Seq.init trials Fun.id)

let sweep_functions ~domain ~k =
  let code = encode domain in
  let p = next_prime (List.length domain) in
  let m = k * k in
  Seq.map
    (fun a ->
      { range = m; apply = (fun v -> a * code v mod p mod m) })
    (Seq.init (p - 1) (fun i -> i + 1))

let exhaustive_functions ~domain ~k =
  let values = Array.of_list domain in
  let d = Array.length values in
  (* Guard against astronomically many functions. *)
  let count =
    let rec pow acc i = if i = 0 then acc else pow (acc * k) (i - 1) in
    if d > 20 then max_int else pow 1 d
  in
  if count > 10_000_000 then
    invalid_arg "Hashing: exhaustive family too large; use another strategy";
  let code = encode domain in
  Seq.map
    (fun idx ->
      (* The idx-th function assigns value j the (idx / k^j mod k)-th
         color. *)
      let colors =
        Array.init d (fun j ->
            let rec digit idx j = if j = 0 then idx mod k else digit (idx / k) (j - 1) in
            digit idx j)
      in
      { range = k; apply = (fun v -> colors.(code v)) })
    (Seq.init count Fun.id)

let functions family ~domain ~k =
  if k <= 1 then Seq.return constant_fn
  else
    match family with
    | Random_trials { trials; seed } -> random_functions ~trials ~seed ~domain ~k
    | Multiplicative_sweep -> sweep_functions ~domain ~k
    | Exhaustive -> exhaustive_functions ~domain ~k

let is_injective_on f values =
  let module IS = Set.Make (Int) in
  let rec go seen = function
    | [] -> true
    | v :: rest ->
        let c = f.apply v in
        if IS.mem c seen then false else go (IS.add c seen) rest
  in
  go IS.empty values
