(** Undirected simple graphs on vertices [0 .. n-1].

    This is the substrate for the paper's parametric problems: [clique] is
    the canonical W[1]-complete problem (Theorem 1's lower bounds reduce
    from it), [simple path of length k] is the motivating f.p.-tractable
    problem solved by color coding, and [Hamiltonian path] drives the
    NP-hardness of acyclic queries with inequalities (Section 5). *)

type t

val create : int -> t
val n_vertices : t -> int
val n_edges : t -> int

(** [add_edge g u v] inserts the undirected edge [{u,v}].  Self-loops are
    allowed (Theorem 3's reduction assumes them); parallel edges are
    merged. *)
val add_edge : t -> int -> int -> unit

val has_edge : t -> int -> int -> bool
val neighbors : t -> int -> int list
val degree : t -> int -> int

(** Edges with [u <= v], sorted. *)
val edges : t -> (int * int) list

val of_edges : int -> (int * int) list -> t
val vertices : t -> int list
val complement : t -> t

(** [disjoint_union g h] relabels [h]'s vertices to [n_vertices g + i]. *)
val disjoint_union : t -> t -> t

(** [add_apex_clique g m] adds [m] fresh vertices adjacent to each other
    and to every existing vertex (the padding used in the paper's footnote
    2 to equalize clique parameters). *)
val add_apex_clique : t -> int -> t

(** [find_clique g k] finds [k] pairwise-adjacent distinct vertices by
    backtracking — the naive [O(n^k)] baseline. *)
val find_clique : t -> int -> int list option

val has_clique : t -> int -> bool
val is_clique : t -> int list -> bool

(** [find_simple_path g k] finds a simple path on exactly [k] vertices
    (k-1 edges) by backtracking. *)
val find_simple_path : t -> int -> int list option

val has_simple_path : t -> int -> bool
val is_simple_path : t -> int list -> bool

(** Naive Hamiltonian-path test (exponential; for small instances and for
    validating the Section-5 reduction). *)
val hamiltonian_path : t -> int list option

(** [is_dominating g vs] — every vertex is in [vs] or adjacent to one. *)
val is_dominating : t -> int list -> bool

(** [find_dominating_set g k] — a dominating set of size (at most) [k],
    by enumerating k-subsets: the [O(n^k)] baseline of the canonical
    W[2]-complete problem the paper cites. *)
val find_dominating_set : t -> int -> int list option

val has_dominating_set : t -> int -> bool

val pp : Format.formatter -> t -> unit

(** {1 Generators} *)

(** Erdős–Rényi [G(n,p)]. *)
val gnp : Random.State.t -> int -> float -> t

(** [multipartite_gnp rng n parts p] — vertices split round-robin into
    [parts] classes; edges only between distinct classes, each with
    probability [p].  By construction the graph has no clique of size
    [parts + 1] — the guaranteed-negative instances of the Theorem-1
    scaling experiments. *)
val multipartite_gnp : Random.State.t -> int -> int -> float -> t

(** [planted_clique rng n p k] — G(n,p) plus a clique on [k] random
    vertices; returns the graph and the planted vertices. *)
val planted_clique : Random.State.t -> int -> float -> int -> t * int list

(** [planted_path rng n p k] — G(n,p) plus a simple path on [k] random
    vertices. *)
val planted_path : Random.State.t -> int -> float -> int -> t * int list

val path_graph : int -> t
val cycle_graph : int -> t
val complete_graph : int -> t
