module Int_set = Set.Make (Int)

type t = { n : int; mutable m : int; adj : Int_set.t array }

let create n =
  if n < 0 then invalid_arg "Graph.create: negative size";
  { n; m = 0; adj = Array.make n Int_set.empty }

let n_vertices g = g.n
let n_edges g = g.m

let check g v =
  if v < 0 || v >= g.n then invalid_arg "Graph: vertex out of range"

let has_edge g u v =
  check g u;
  check g v;
  Int_set.mem v g.adj.(u)

let add_edge g u v =
  check g u;
  check g v;
  if not (has_edge g u v) then begin
    g.adj.(u) <- Int_set.add v g.adj.(u);
    g.adj.(v) <- Int_set.add u g.adj.(v);
    g.m <- g.m + 1
  end

let neighbors g v =
  check g v;
  Int_set.elements g.adj.(v)

let degree g v =
  check g v;
  Int_set.cardinal g.adj.(v)

let edges g =
  let acc = ref [] in
  for u = g.n - 1 downto 0 do
    Int_set.iter (fun v -> if u <= v then acc := (u, v) :: !acc) g.adj.(u)
  done;
  !acc

let of_edges n es =
  let g = create n in
  List.iter (fun (u, v) -> add_edge g u v) es;
  g

let vertices g = List.init g.n Fun.id

let complement g =
  let h = create g.n in
  for u = 0 to g.n - 1 do
    for v = u + 1 to g.n - 1 do
      if not (has_edge g u v) then add_edge h u v
    done
  done;
  h

let disjoint_union g h =
  let u = create (g.n + h.n) in
  List.iter (fun (a, b) -> add_edge u a b) (edges g);
  List.iter (fun (a, b) -> add_edge u (g.n + a) (g.n + b)) (edges h);
  u

let add_apex_clique g m =
  let h = create (g.n + m) in
  List.iter (fun (a, b) -> add_edge h a b) (edges g);
  for i = g.n to g.n + m - 1 do
    for j = 0 to i - 1 do
      add_edge h i j
    done
  done;
  h

let is_clique g vs =
  let rec distinct = function
    | [] -> true
    | v :: rest -> (not (List.mem v rest)) && distinct rest
  in
  distinct vs
  && List.for_all
       (fun u -> List.for_all (fun v -> u = v || has_edge g u v) vs)
       vs

(* Backtracking clique search: extend the current clique with vertices
   larger than the last one that are adjacent to all chosen so far.  Worst
   case O(n^k) — deliberately so; this is the paper's baseline. *)
let find_clique g k =
  if k = 0 then Some []
  else
    let rec extend chosen candidates need =
      if need = 0 then Some (List.rev chosen)
      else
        let rec try_each = function
          | [] -> None
          | v :: rest -> (
              let candidates' =
                List.filter (fun w -> w > v && has_edge g v w) rest
              in
              match extend (v :: chosen) candidates' (need - 1) with
              | Some _ as found -> found
              | None -> try_each rest)
        in
        try_each candidates
    in
    extend [] (vertices g) k

let has_clique g k = find_clique g k <> None

let is_simple_path g vs =
  let rec distinct = function
    | [] -> true
    | v :: rest -> (not (List.mem v rest)) && distinct rest
  in
  let rec chained = function
    | [] | [ _ ] -> true
    | u :: (v :: _ as rest) -> has_edge g u v && chained rest
  in
  distinct vs && chained vs

let find_simple_path g k =
  if k = 0 then Some []
  else if k > g.n then None
  else
    let visited = Array.make g.n false in
    let rec extend path v need =
      if need = 0 then Some (List.rev path)
      else
        let rec try_each = function
          | [] -> None
          | w :: rest -> (
              if visited.(w) then try_each rest
              else begin
                visited.(w) <- true;
                match extend (w :: path) w (need - 1) with
                | Some _ as found -> found
                | None ->
                    visited.(w) <- false;
                    try_each rest
              end)
        in
        try_each (neighbors g v)
    in
    let rec try_start v =
      if v >= g.n then None
      else begin
        visited.(v) <- true;
        match extend [ v ] v (k - 1) with
        | Some _ as found -> found
        | None ->
            visited.(v) <- false;
            try_start (v + 1)
      end
    in
    try_start 0

let has_simple_path g k = find_simple_path g k <> None

let hamiltonian_path g = if g.n = 0 then Some [] else find_simple_path g g.n

let is_dominating g vs =
  List.for_all
    (fun u -> List.mem u vs || List.exists (fun v -> has_edge g u v) vs)
    (vertices g)

let find_dominating_set g k =
  if g.n = 0 then Some []
  else begin
    let rec choose start need acc =
      if need = 0 then if is_dominating g acc then Some (List.rev acc) else None
      else if start > g.n - need then None
      else
        match choose (start + 1) (need - 1) (start :: acc) with
        | Some _ as found -> found
        | None -> choose (start + 1) need acc
    in
    if k >= g.n then Some (vertices g) else choose 0 (min k g.n) []
  end

let has_dominating_set g k = find_dominating_set g k <> None

let pp ppf g =
  Format.fprintf ppf "graph(n=%d, m=%d) {%s}" g.n g.m
    (String.concat "; "
       (List.map (fun (u, v) -> Printf.sprintf "%d-%d" u v) (edges g)))

let gnp rng n p =
  let g = create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Random.State.float rng 1.0 < p then add_edge g u v
    done
  done;
  g

let multipartite_gnp rng n parts p =
  if parts < 1 then invalid_arg "Graph.multipartite_gnp: need a part";
  let g = create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if u mod parts <> v mod parts && Random.State.float rng 1.0 < p then
        add_edge g u v
    done
  done;
  g

let sample_vertices rng n k =
  if k > n then invalid_arg "Graph: sample larger than vertex set";
  let perm = Array.init n Fun.id in
  for i = n - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = perm.(i) in
    perm.(i) <- perm.(j);
    perm.(j) <- tmp
  done;
  Array.to_list (Array.sub perm 0 k)

let planted_clique rng n p k =
  let g = gnp rng n p in
  let chosen = sample_vertices rng n k in
  List.iter
    (fun u -> List.iter (fun v -> if u <> v then add_edge g u v) chosen)
    chosen;
  (g, chosen)

let planted_path rng n p k =
  let g = gnp rng n p in
  let chosen = sample_vertices rng n k in
  let rec link = function
    | u :: (v :: _ as rest) ->
        add_edge g u v;
        link rest
    | [] | [ _ ] -> ()
  in
  link chosen;
  (g, chosen)

let path_graph n = of_edges n (List.init (max 0 (n - 1)) (fun i -> (i, i + 1)))

let cycle_graph n =
  if n < 3 then invalid_arg "Graph.cycle_graph: need at least 3 vertices";
  of_edges n ((n - 1, 0) :: List.init (n - 1) (fun i -> (i, i + 1)))

let complete_graph n =
  let g = create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      add_edge g u v
    done
  done;
  g
