module Int_set = Set.Make (Int)

type t = { n : int; adj : Int_set.t array }

let create n =
  if n < 0 then invalid_arg "Digraph.create: negative size";
  { n; adj = Array.make n Int_set.empty }

let n_vertices g = g.n

let check g v =
  if v < 0 || v >= g.n then invalid_arg "Digraph: vertex out of range"

let add_edge g u v =
  check g u;
  check g v;
  g.adj.(u) <- Int_set.add v g.adj.(u)

let has_edge g u v =
  check g u;
  check g v;
  Int_set.mem v g.adj.(u)

let successors g v =
  check g v;
  Int_set.elements g.adj.(v)

let edges g =
  let acc = ref [] in
  for u = g.n - 1 downto 0 do
    Int_set.iter (fun v -> acc := (u, v) :: !acc) g.adj.(u)
  done;
  !acc

let of_edges n es =
  let g = create n in
  List.iter (fun (u, v) -> add_edge g u v) es;
  g

(* Tarjan's algorithm.  Constraint graphs are query-sized, so the recursive
   formulation is fine. *)
let sccs g =
  let index = Array.make g.n (-1) in
  let lowlink = Array.make g.n 0 in
  let on_stack = Array.make g.n false in
  let component = Array.make g.n (-1) in
  let stack = ref [] in
  let next_index = ref 0 in
  let next_comp = ref 0 in
  let rec strongconnect v =
    index.(v) <- !next_index;
    lowlink.(v) <- !next_index;
    incr next_index;
    stack := v :: !stack;
    on_stack.(v) <- true;
    Int_set.iter
      (fun w ->
        if index.(w) < 0 then begin
          strongconnect w;
          lowlink.(v) <- min lowlink.(v) lowlink.(w)
        end
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      g.adj.(v);
    if lowlink.(v) = index.(v) then begin
      let rec pop () =
        match !stack with
        | [] -> assert false
        | w :: rest ->
            stack := rest;
            on_stack.(w) <- false;
            component.(w) <- !next_comp;
            if w <> v then pop ()
      in
      pop ();
      incr next_comp
    end
  in
  for v = 0 to g.n - 1 do
    if index.(v) < 0 then strongconnect v
  done;
  (component, !next_comp)

let reachable g u =
  check g u;
  let seen = Array.make g.n false in
  let rec dfs v =
    if not seen.(v) then begin
      seen.(v) <- true;
      Int_set.iter dfs g.adj.(v)
    end
  in
  dfs u;
  seen

let pp ppf g =
  Format.fprintf ppf "digraph(n=%d) {%s}" g.n
    (String.concat "; "
       (List.map (fun (u, v) -> Printf.sprintf "%d->%d" u v) (edges g)))
