(** Directed graphs on [0 .. n-1], with Tarjan's strongly-connected
    components.

    Used by the comparison-constraint preprocessing of Section 5: the
    consistency of a system of [<] / [<=] constraints is decided on the
    constraint digraph's strong components (Klug's method as cited by the
    paper). *)

type t

val create : int -> t
val n_vertices : t -> int
val add_edge : t -> int -> int -> unit
val has_edge : t -> int -> int -> bool
val successors : t -> int -> int list
val edges : t -> (int * int) list
val of_edges : int -> (int * int) list -> t

(** [sccs g] assigns each vertex a component id in [0 .. count-1]; ids are
    in reverse topological order of the condensation (i.e., if there is an
    edge from component [a] to component [b <> a] then [a > b]).  Returns
    [(component, count)]. *)
val sccs : t -> int array * int

(** [reachable g u] — all vertices reachable from [u], including [u]. *)
val reachable : t -> int -> bool array

val pp : Format.formatter -> t -> unit
