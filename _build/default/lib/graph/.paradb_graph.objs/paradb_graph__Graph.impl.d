lib/graph/graph.ml: Array Format Fun Int List Printf Random Set String
