lib/graph/graph.mli: Format Random
