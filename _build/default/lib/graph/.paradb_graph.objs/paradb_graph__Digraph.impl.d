lib/graph/digraph.ml: Array Format Int List Printf Set String
