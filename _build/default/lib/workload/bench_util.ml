let time f =
  let start = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. start)

let time_median ~runs f =
  if runs < 1 then invalid_arg "Bench_util.time_median: runs must be positive";
  let samples = ref [] in
  let result = ref None in
  for _ = 1 to runs do
    let r, t = time f in
    samples := t :: !samples;
    result := Some r
  done;
  let sorted = List.sort Float.compare !samples in
  let median = List.nth sorted (runs / 2) in
  match !result with
  | Some r -> (r, median)
  | None -> assert false

let table ~header rows =
  let all = header :: rows in
  let cols = List.length header in
  let width c =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row c with
        | Some cell -> max acc (String.length cell)
        | None -> acc)
      0 all
  in
  let widths = List.init cols width in
  let render_row row =
    "| "
    ^ String.concat " | "
        (List.mapi
           (fun c cell ->
             let w = List.nth widths c in
             cell ^ String.make (w - String.length cell) ' ')
           (List.mapi
              (fun c _ ->
                match List.nth_opt row c with Some s -> s | None -> "")
              header))
    ^ " |"
  in
  let separator =
    "|" ^ String.concat "|" (List.map (fun w -> String.make (w + 2) '-') widths)
    ^ "|"
  in
  String.concat "\n" (render_row header :: separator :: List.map render_row rows)

let print_table ~header rows = print_endline (table ~header rows)

let pretty_seconds s =
  if s < 1e-6 then Printf.sprintf "%.0fns" (s *. 1e9)
  else if s < 1e-3 then Printf.sprintf "%.1fus" (s *. 1e6)
  else if s < 1.0 then Printf.sprintf "%.2fms" (s *. 1e3)
  else Printf.sprintf "%.2fs" s

let ratio_string a b =
  if a <= 0.0 then "-" else Printf.sprintf "x%.1f" (b /. a)
