module Database = Paradb_relational.Database
module Relation = Paradb_relational.Relation
module Value = Paradb_relational.Value
open Paradb_query

let random_database rng ~schema ~domain_size ~tuples =
  let relation (name, arity) =
    let rows =
      List.init tuples (fun _ ->
          Array.init arity (fun _ ->
              Value.Int (Random.State.int rng domain_size)))
    in
    Relation.create ~name
      ~schema:(List.init arity (Printf.sprintf "a%d"))
      rows
  in
  Database.of_relations (List.map relation schema)

let edge_database rng ~nodes ~edges =
  let rows =
    List.init edges (fun _ ->
        [|
          Value.Int (Random.State.int rng nodes);
          Value.Int (Random.State.int rng nodes);
        |])
  in
  Database.of_relations
    [ Relation.create ~name:"e" ~schema:[ "a"; "b" ] rows ]

let two_cycle_database ~pairs =
  let rows =
    List.concat
      (List.init pairs (fun i ->
           let a = Value.Int (2 * i) and b = Value.Int ((2 * i) + 1) in
           [ [| a; b |]; [| b; a |] ]))
  in
  Database.of_relations
    [ Relation.create ~name:"e" ~schema:[ "a"; "b" ] rows ]

let chain_query ~length ~neq =
  let var i = Term.var (Printf.sprintf "x%d" i) in
  let body =
    List.init length (fun i -> Atom.make "e" [ var i; var (i + 1) ])
  in
  let constraints = List.map (fun (i, j) -> Constr.neq (var i) (var j)) neq in
  Cq.make ~constraints ~head:[ var 0; var length ] body

let employees_multi_project rng ~employees ~projects ~assignments =
  let rows =
    List.init assignments (fun _ ->
        [|
          Value.Str (Printf.sprintf "emp%d" (Random.State.int rng employees));
          Value.Str (Printf.sprintf "proj%d" (Random.State.int rng projects));
        |])
  in
  let db =
    Database.of_relations
      [ Relation.create ~name:"ep" ~schema:[ "e"; "p" ] rows ]
  in
  let e = Term.var "e" and p = Term.var "p" and p' = Term.var "p2" in
  let q =
    Cq.make ~name:"g" ~head:[ e ]
      ~constraints:[ Constr.neq p p' ]
      [ Atom.make "ep" [ e; p ]; Atom.make "ep" [ e; p' ] ]
  in
  (db, q)

let students_outside_department rng ~students ~courses ~departments
    ~enrollments =
  let student i = Value.Str (Printf.sprintf "s%d" i)
  and course i = Value.Str (Printf.sprintf "c%d" i)
  and dept i = Value.Str (Printf.sprintf "d%d" i) in
  let sd_rows =
    List.init students (fun s ->
        [| student s; dept (Random.State.int rng departments) |])
  in
  let cd_rows =
    List.init courses (fun c ->
        [| course c; dept (Random.State.int rng departments) |])
  in
  let sc_rows =
    List.init enrollments (fun _ ->
        [|
          student (Random.State.int rng students);
          course (Random.State.int rng courses);
        |])
  in
  let db =
    Database.of_relations
      [
        Relation.create ~name:"sd" ~schema:[ "s"; "d" ] sd_rows;
        Relation.create ~name:"cd" ~schema:[ "c"; "d" ] cd_rows;
        Relation.create ~name:"sc" ~schema:[ "s"; "c" ] sc_rows;
      ]
  in
  let s = Term.var "s" and d = Term.var "d" and c = Term.var "c" in
  let d' = Term.var "d2" in
  let q =
    Cq.make ~name:"g" ~head:[ s ]
      ~constraints:[ Constr.neq d d' ]
      [
        Atom.make "sd" [ s; d ];
        Atom.make "sc" [ s; c ];
        Atom.make "cd" [ c; d' ];
      ]
  in
  (db, q)

let employees_higher_salary rng ~employees ~max_salary =
  let emp i = Value.Str (Printf.sprintf "emp%d" i) in
  (* Everyone except employee 0 has a random manager with a smaller id
     (an arbitrary hierarchy). *)
  let em_rows =
    List.init (employees - 1) (fun i ->
        let e = i + 1 in
        [| emp e; emp (Random.State.int rng e) |])
  in
  let es_rows =
    List.init employees (fun e ->
        [| emp e; Value.Int (1 + Random.State.int rng max_salary) |])
  in
  let db =
    Database.of_relations
      [
        Relation.create ~name:"em" ~schema:[ "e"; "m" ] em_rows;
        Relation.create ~name:"es" ~schema:[ "e"; "s" ] es_rows;
      ]
  in
  let e = Term.var "e" and m = Term.var "m" in
  let s = Term.var "s" and s' = Term.var "s2" in
  let q =
    Cq.make ~name:"g" ~head:[ e ]
      ~constraints:[ Constr.lt s' s ]
      [
        Atom.make "em" [ e; m ];
        Atom.make "es" [ e; s ];
        Atom.make "es" [ m; s' ];
      ]
  in
  (db, q)
