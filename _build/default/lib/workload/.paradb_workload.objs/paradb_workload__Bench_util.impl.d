lib/workload/bench_util.ml: Float List Printf String Unix
