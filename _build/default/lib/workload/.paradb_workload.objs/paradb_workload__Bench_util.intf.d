lib/workload/bench_util.mli:
