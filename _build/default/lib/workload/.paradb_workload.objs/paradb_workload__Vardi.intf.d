lib/workload/vardi.mli: Paradb_query Paradb_relational Random
