lib/workload/generators.ml: Array Atom Constr Cq List Paradb_query Paradb_relational Printf Random Term
