lib/workload/generators.mli: Paradb_query Paradb_relational Random
