lib/workload/vardi.ml: Atom List Paradb_query Paradb_relational Printf Program Random Rule Term
