(** Timing and table helpers shared by the experiment harness. *)

(** Wall-clock time of a thunk, in seconds, together with its result. *)
val time : (unit -> 'a) -> 'a * float

(** Median wall-clock time over [runs] executions (the result of the
    last run is returned). *)
val time_median : runs:int -> (unit -> 'a) -> 'a * float

(** Render an aligned text table (also valid Markdown). *)
val table : header:string list -> string list list -> string

val print_table : header:string list -> string list list -> unit

(** Format seconds adaptively (ns/µs/ms/s). *)
val pretty_seconds : float -> string

(** [ratio_string a b] — ["×%.1f"] of [b/a], or ["-"] when [a] is 0. *)
val ratio_string : float -> float -> string
