(** The recursive workload family mirroring Section 4's discussion of
    fixpoint/Datalog: an IDB relation of arity [k] ("k-pebble
    reachability" on the product graph) whose bottom-up evaluation
    inherently visits up to [n^k] tuples — the query size is polynomial
    in [k] but the exponent is [k], Vardi's provable lower-bound shape.

    {v
      reach(x1, ..., xk) :- s(x1), ..., s(xk).
      reach(y1, ..., yk) :- reach(x1, ..., xk), e(x1,y1), ..., e(xk,yk).
      goal :- reach(x1, ..., xk), t(x1), ..., t(xk).
    v} *)

val program : k:int -> Paradb_query.Program.t

(** Database for a directed graph with source set [s] and target set
    [t]. *)
val database :
  edges:(int * int) list -> sources:int list -> targets:int list ->
  Paradb_relational.Database.t

(** A layered random instance: [layers] layers of [width] nodes with
    random forward edges; sources = layer 0, targets = last layer. *)
val layered_instance :
  Random.State.t -> layers:int -> width:int -> edge_prob:float ->
  Paradb_relational.Database.t
