module Database = Paradb_relational.Database
module Relation = Paradb_relational.Relation
module Value = Paradb_relational.Value
open Paradb_query

let program ~k =
  if k < 1 then invalid_arg "Vardi.program: k must be positive";
  let x i = Term.var (Printf.sprintf "x%d" i)
  and y i = Term.var (Printf.sprintf "y%d" i) in
  let xs = List.init k x and ys = List.init k y in
  let base =
    Rule.make
      (Atom.make "reach" xs)
      (List.init k (fun i -> Atom.make "s" [ x i ]))
  in
  let step =
    Rule.make
      (Atom.make "reach" ys)
      (Atom.make "reach" xs
      :: List.init k (fun i -> Atom.make "e" [ x i; y i ]))
  in
  let goal =
    Rule.make
      (Atom.make "goal" [])
      (Atom.make "reach" xs :: List.init k (fun i -> Atom.make "t" [ x i ]))
  in
  Program.make [ base; step; goal ] ~goal:"goal"

let database ~edges ~sources ~targets =
  let unary name xs =
    Relation.create ~name ~schema:[ "x" ]
      (List.map (fun v -> [| Value.Int v |]) xs)
  in
  Database.of_relations
    [
      Relation.create ~name:"e" ~schema:[ "a"; "b" ]
        (List.map (fun (u, v) -> [| Value.Int u; Value.Int v |]) edges);
      unary "s" sources;
      unary "t" targets;
    ]

let layered_instance rng ~layers ~width ~edge_prob =
  let node layer i = (layer * width) + i in
  let edges = ref [] in
  for layer = 0 to layers - 2 do
    for i = 0 to width - 1 do
      for j = 0 to width - 1 do
        if Random.State.float rng 1.0 < edge_prob then
          edges := (node layer i, node (layer + 1) j) :: !edges
      done
    done
  done;
  database ~edges:!edges
    ~sources:(List.init width (node 0))
    ~targets:(List.init width (node (layers - 1)))
