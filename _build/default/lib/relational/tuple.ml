type t = Value.t array

let arity = Array.length

let compare (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else
    let rec go i =
      if i >= la then 0
      else
        let c = Value.compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

let equal a b = compare a b = 0

let hash (a : t) =
  Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 a

let of_ints xs = Array.of_list (List.map Value.int xs)
let of_list = Array.of_list
let to_list = Array.to_list
let sub (t : t) (positions : int array) = Array.map (fun i -> t.(i)) positions
let append = Array.append

let pp ppf (t : t) =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Value.pp)
    (Array.to_list t)

let to_string t = Format.asprintf "%a" pp t

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Hashed = struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
module Table = Hashtbl.Make (Hashed)
