type t = {
  name : string;
  schema : string array;
  index : (string, int) Hashtbl.t;
  rows : Tuple.Set.t;
}

let build_index schema =
  let index = Hashtbl.create (Array.length schema) in
  Array.iteri
    (fun i attr ->
      if Hashtbl.mem index attr then
        invalid_arg ("Relation: duplicate attribute " ^ attr);
      Hashtbl.add index attr i)
    schema;
  index

let of_set ?(name = "") ~schema rows =
  let schema = Array.of_list schema in
  let index = build_index schema in
  let arity = Array.length schema in
  Tuple.Set.iter
    (fun row ->
      if Array.length row <> arity then
        invalid_arg
          (Printf.sprintf "Relation %s: row arity %d, schema arity %d" name
             (Array.length row) arity))
    rows;
  { name; schema; index; rows }

let create ?(name = "") ~schema rows =
  of_set ~name ~schema (Tuple.Set.of_list rows)

let name r = r.name
let with_name name r = { r with name }
let schema r = r.schema
let schema_list r = Array.to_list r.schema
let arity r = Array.length r.schema
let cardinality r = Tuple.Set.cardinal r.rows
let is_empty r = Tuple.Set.is_empty r.rows
let mem row r = Tuple.Set.mem row r.rows
let tuples r = Tuple.Set.elements r.rows
let tuple_set r = r.rows
let iter f r = Tuple.Set.iter f r.rows
let fold f r init = Tuple.Set.fold f r.rows init

let add row r =
  if Array.length row <> arity r then invalid_arg "Relation.add: arity";
  { r with rows = Tuple.Set.add row r.rows }

let position r attr = Hashtbl.find r.index attr
let positions r attrs = Array.of_list (List.map (position r) attrs)
let has_attr r attr = Hashtbl.mem r.index attr

let common_attrs r1 r2 =
  List.filter (has_attr r2) (schema_list r1)

let project attrs r =
  let pos = positions r attrs in
  let rows =
    Tuple.Set.fold
      (fun row acc -> Tuple.Set.add (Tuple.sub row pos) acc)
      r.rows Tuple.Set.empty
  in
  of_set ~name:r.name ~schema:attrs rows

let rename pairs r =
  let fresh attr =
    match List.assoc_opt attr pairs with Some nu -> nu | None -> attr
  in
  let schema = List.map fresh (schema_list r) in
  of_set ~name:r.name ~schema r.rows

let rename_positional new_schema r =
  if List.length new_schema <> arity r then
    invalid_arg "Relation.rename_positional: arity";
  of_set ~name:r.name ~schema:new_schema r.rows

let select pred r = { r with rows = Tuple.Set.filter pred r.rows }

let restrict r attr pred =
  let i = position r attr in
  select (fun row -> pred row.(i)) r

(* Hash join.  The probe side is [r1]; the build side [r2] is indexed on the
   common attributes.  Result schema: r1's attributes followed by r2's
   attributes that are not common. *)
let natural_join r1 r2 =
  let common = common_attrs r1 r2 in
  let extra = List.filter (fun a -> not (has_attr r1 a)) (schema_list r2) in
  let key1 = positions r1 common and key2 = positions r2 common in
  let extra2 = positions r2 extra in
  let table : Tuple.t list Tuple.Table.t =
    Tuple.Table.create (max 16 (cardinality r2))
  in
  iter
    (fun row ->
      let key = Tuple.sub row key2 in
      let rest = Tuple.sub row extra2 in
      let bucket = try Tuple.Table.find table key with Not_found -> [] in
      Tuple.Table.replace table key (rest :: bucket))
    r2;
  let rows =
    fold
      (fun row acc ->
        let key = Tuple.sub row key1 in
        match Tuple.Table.find_opt table key with
        | None -> acc
        | Some bucket ->
            List.fold_left
              (fun acc rest -> Tuple.Set.add (Tuple.append row rest) acc)
              acc bucket)
      r1 Tuple.Set.empty
  in
  of_set ~name:r1.name ~schema:(schema_list r1 @ extra) rows

let sort_merge_join r1 r2 =
  let common = common_attrs r1 r2 in
  let key1 = positions r1 common and key2 = positions r2 common in
  let extra = List.filter (fun a -> not (has_attr r1 a)) (schema_list r2) in
  let extra2 = positions r2 extra in
  let keyed rel keypos =
    let rows =
      List.map (fun row -> (Tuple.sub row keypos, row)) (tuples rel)
    in
    List.sort (fun (k1, _) (k2, _) -> Tuple.compare k1 k2) rows
  in
  let left = keyed r1 key1 and right = keyed r2 key2 in
  (* Advance both sorted lists; on equal keys, emit the group product. *)
  let rec take_group key acc = function
    | (k, row) :: rest when Tuple.equal k key -> take_group key (row :: acc) rest
    | rest -> (acc, rest)
  in
  let rec merge acc left right =
    match left, right with
    | [], _ | _, [] -> acc
    | (k1, _) :: _, (k2, _) :: _ ->
        let c = Tuple.compare k1 k2 in
        if c < 0 then merge acc (snd (take_group k1 [] left)) right
        else if c > 0 then merge acc left (snd (take_group k2 [] right))
        else begin
          let group1, left' = take_group k1 [] left in
          let group2, right' = take_group k1 [] right in
          let acc =
            List.fold_left
              (fun acc row1 ->
                List.fold_left
                  (fun acc row2 ->
                    Tuple.Set.add
                      (Tuple.append row1 (Tuple.sub row2 extra2))
                      acc)
                  acc group2)
              acc group1
          in
          merge acc left' right'
        end
  in
  let rows = merge Tuple.Set.empty left right in
  of_set ~name:r1.name ~schema:(schema_list r1 @ extra) rows

let semijoin r1 r2 =
  let common = common_attrs r1 r2 in
  match common with
  | [] -> if is_empty r2 then { r1 with rows = Tuple.Set.empty } else r1
  | _ ->
      let key1 = positions r1 common and key2 = positions r2 common in
      let keys =
        fold
          (fun row acc -> Tuple.Set.add (Tuple.sub row key2) acc)
          r2 Tuple.Set.empty
      in
      select (fun row -> Tuple.Set.mem (Tuple.sub row key1) keys) r1

let align_schemas op_name r1 r2 =
  (* Reorder r2's columns to match r1's schema; fail if attribute sets
     differ. *)
  if arity r1 <> arity r2 then invalid_arg (op_name ^ ": schemas differ");
  let pos =
    try positions r2 (schema_list r1)
    with Not_found -> invalid_arg (op_name ^ ": schemas differ")
  in
  Tuple.Set.fold
    (fun row acc -> Tuple.Set.add (Tuple.sub row pos) acc)
    r2.rows Tuple.Set.empty

let union r1 r2 =
  let rows2 = align_schemas "Relation.union" r1 r2 in
  { r1 with rows = Tuple.Set.union r1.rows rows2 }

let diff r1 r2 =
  let rows2 = align_schemas "Relation.diff" r1 r2 in
  { r1 with rows = Tuple.Set.diff r1.rows rows2 }

let inter r1 r2 =
  let rows2 = align_schemas "Relation.inter" r1 r2 in
  { r1 with rows = Tuple.Set.inter r1.rows rows2 }

let product r1 r2 =
  (match common_attrs r1 r2 with
  | [] -> ()
  | a :: _ -> invalid_arg ("Relation.product: shared attribute " ^ a));
  let rows =
    fold
      (fun row1 acc ->
        fold
          (fun row2 acc -> Tuple.Set.add (Tuple.append row1 row2) acc)
          r2 acc)
      r1 Tuple.Set.empty
  in
  of_set ~name:r1.name ~schema:(schema_list r1 @ schema_list r2) rows

let extend attr f r =
  let rows =
    Tuple.Set.fold
      (fun row acc -> Tuple.Set.add (Tuple.append row [| f row |]) acc)
      r.rows Tuple.Set.empty
  in
  of_set ~name:r.name ~schema:(schema_list r @ [ attr ]) rows

let set_equal r1 r2 =
  arity r1 = arity r2
  && List.for_all (has_attr r2) (schema_list r1)
  && Tuple.Set.equal r1.rows (align_schemas "Relation.set_equal" r1 r2)

let domain r =
  fold
    (fun row acc -> Array.fold_left (fun acc v -> Value.Set.add v acc) acc row)
    r Value.Set.empty

(* Printing is capped so that accidentally formatting a large relation
   stays readable; [set_equal] and friends are the programmatic API. *)
let pp_row_cap = 50

let pp ppf r =
  Format.fprintf ppf "@[<v>%s(%s) [%d rows]"
    (if r.name = "" then "_" else r.name)
    (String.concat ", " (schema_list r))
    (cardinality r);
  let shown = ref 0 in
  (try
     iter
       (fun row ->
         if !shown >= pp_row_cap then raise Exit;
         incr shown;
         Format.fprintf ppf "@,  %a" Tuple.pp row)
       r
   with Exit ->
     Format.fprintf ppf "@,  ... (%d more)" (cardinality r - pp_row_cap));
  Format.fprintf ppf "@]"

let to_string r = Format.asprintf "%a" pp r
