type t =
  | Int of int
  | Str of string

let compare a b =
  match a, b with
  | Int x, Int y -> Stdlib.compare (x : int) y
  | Int _, Str _ -> -1
  | Str _, Int _ -> 1
  | Str x, Str y -> String.compare x y

let equal a b = compare a b = 0

let hash = function
  | Int x -> Hashtbl.hash (0, x)
  | Str s -> Hashtbl.hash (1, s)

let int i = Int i
let str s = Str s

let to_int = function
  | Int i -> i
  | Str s -> invalid_arg ("Value.to_int: not an integer: " ^ s)

let to_string = function
  | Int i -> string_of_int i
  | Str s -> s

let of_string s =
  match int_of_string_opt s with
  | Some i -> Int i
  | None -> Str s

let pp ppf v = Format.pp_print_string ppf (to_string v)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Hashed = struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
module Table = Hashtbl.Make (Hashed)
