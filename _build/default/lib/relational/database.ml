module String_map = Map.Make (String)

type t = Relation.t String_map.t

let empty = String_map.empty

let add r db =
  let name = Relation.name r in
  if name = "" then invalid_arg "Database.add: relation has no name";
  String_map.add name r db

let of_relations rs = List.fold_left (fun db r -> add r db) empty rs
let find_opt db name = String_map.find_opt name db

let find db name =
  match find_opt db name with
  | Some r -> r
  | None -> invalid_arg ("Database.find: no relation " ^ name)

let mem db name = String_map.mem name db
let relations db = List.map snd (String_map.bindings db)
let names db = List.map fst (String_map.bindings db)
let arity_of db name = Relation.arity (find db name)

let domain db =
  String_map.fold
    (fun _ r acc -> Value.Set.union acc (Relation.domain r))
    db Value.Set.empty

let size db =
  String_map.fold (fun _ r acc -> acc + Relation.cardinality r) db 0

let cells db =
  String_map.fold
    (fun _ r acc -> acc + (Relation.cardinality r * Relation.arity r))
    db 0

let pp ppf db =
  Format.fprintf ppf "@[<v>";
  List.iter (fun r -> Format.fprintf ppf "%a@," Relation.pp r) (relations db);
  Format.fprintf ppf "@]"
