let dedup xs =
  let rec go seen = function
    | [] -> List.rev seen
    | x :: rest -> if List.mem x seen then go seen rest else go (x :: seen) rest
  in
  go [] xs
