(** A database instance: a finite set of named relations over one domain. *)

type t

val empty : t

(** [add r db] registers [r] under [Relation.name r] (which must be
    non-empty), replacing any previous relation of that name. *)
val add : Relation.t -> t -> t

val of_relations : Relation.t list -> t
val find : t -> string -> Relation.t
val find_opt : t -> string -> Relation.t option
val mem : t -> string -> bool
val relations : t -> Relation.t list
val names : t -> string list
val arity_of : t -> string -> int

(** Active domain: every value appearing in some tuple. *)
val domain : t -> Value.Set.t

(** Total number of tuples across relations (the paper's [n], up to the
    constant arity factor). *)
val size : t -> int

(** Total number of value cells across relations. *)
val cells : t -> int

val pp : Format.formatter -> t -> unit
