lib/relational/database.mli: Format Relation Value
