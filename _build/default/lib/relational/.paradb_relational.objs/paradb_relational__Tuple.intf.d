lib/relational/tuple.mli: Format Hashtbl Map Set Value
