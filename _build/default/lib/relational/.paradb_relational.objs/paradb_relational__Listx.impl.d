lib/relational/listx.ml: List
