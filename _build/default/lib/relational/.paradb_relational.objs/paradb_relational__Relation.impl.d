lib/relational/relation.ml: Array Format Hashtbl List Printf String Tuple Value
