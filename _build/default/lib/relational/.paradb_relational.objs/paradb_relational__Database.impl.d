lib/relational/database.ml: Format List Map Relation String Value
