lib/relational/listx.mli:
