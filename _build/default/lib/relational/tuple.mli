(** Database tuples: fixed-arity arrays of values with value semantics. *)

type t = Value.t array

val arity : t -> int
val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

(** [of_ints [1;2]] builds the tuple [(Int 1, Int 2)]. *)
val of_ints : int list -> t

val of_list : Value.t list -> t
val to_list : t -> Value.t list

(** [sub t positions] extracts the subtuple at the given positions, in
    order.  Positions may repeat. *)
val sub : t -> int array -> t

(** [append a b] concatenates two tuples. *)
val append : t -> t -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
module Table : Hashtbl.S with type key = t
