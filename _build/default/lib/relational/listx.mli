(** Small list utilities shared across the libraries. *)

(** [dedup xs] — first occurrences, in order (structural equality). *)
val dedup : 'a list -> 'a list
