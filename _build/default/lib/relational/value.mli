(** Domain values.

    The paper's databases are over an abstract domain [D]; we realize [D] as
    the disjoint union of integers and strings, which covers every workload
    in the paper (graph nodes, gate names, employees, salaries, ...).  The
    order is total: all integers sort before all strings. *)

type t =
  | Int of int
  | Str of string

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val int : int -> t
val str : string -> t

(** [to_int v] is the payload of [Int], raising [Invalid_argument]
    otherwise.  Used by workloads that know their domain is numeric. *)
val to_int : t -> int

val to_string : t -> string

(** [of_string s] parses an integer if possible, else returns [Str s]. *)
val of_string : string -> t

val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
module Table : Hashtbl.S with type key = t
