lib/datalog/engine.ml: Atom Cq List Paradb_eval Paradb_query Paradb_relational Printf Program Rule
