lib/datalog/engine.mli: Paradb_query Paradb_relational
