module Relation = Paradb_relational.Relation
module Database = Paradb_relational.Database
module Tuple = Paradb_relational.Tuple
module Engine = Paradb_datalog.Engine
open Paradb_query

let tc_program =
  Parser.parse_program
    "tc(X, Y) :- e(X, Y). tc(X, Z) :- e(X, Y), tc(Y, Z)." ~goal:"tc"

let path_db = Parser.parse_facts "e(1, 2). e(2, 3). e(3, 4)."

let test_transitive_closure () =
  let r = Engine.evaluate path_db tc_program in
  Alcotest.(check int) "pairs" 6 (Relation.cardinality r);
  Alcotest.(check bool) "1-4" true (Relation.mem (Tuple.of_ints [ 1; 4 ]) r);
  Alcotest.(check bool) "no 4-1" false (Relation.mem (Tuple.of_ints [ 4; 1 ]) r)

let test_cycle () =
  let db = Parser.parse_facts "e(1, 2). e(2, 3). e(3, 1)." in
  let r = Engine.evaluate db tc_program in
  Alcotest.(check int) "complete" 9 (Relation.cardinality r)

let test_naive_equals_seminaive () =
  let dbs =
    [
      path_db;
      Parser.parse_facts "e(1, 1).";
      Parser.parse_facts "e(1, 2). e(2, 1). e(2, 3). e(4, 5).";
    ]
  in
  List.iter
    (fun db ->
      let a = Engine.evaluate ~strategy:Engine.Naive db tc_program in
      let b = Engine.evaluate ~strategy:Engine.Seminaive db tc_program in
      Alcotest.(check bool) "same fixpoint" true (Relation.set_equal a b))
    dbs

let test_seminaive_fewer_derivations () =
  let rng = Random.State.make [| 5 |] in
  let edges =
    String.concat " "
      (List.init 40 (fun _ ->
           Printf.sprintf "e(%d, %d)." (Random.State.int rng 12)
             (Random.State.int rng 12)))
  in
  let db = Parser.parse_facts edges in
  let s1 = Engine.new_stats () and s2 = Engine.new_stats () in
  ignore (Engine.evaluate ~strategy:Engine.Naive ~stats:s1 db tc_program);
  ignore (Engine.evaluate ~strategy:Engine.Seminaive ~stats:s2 db tc_program);
  Alcotest.(check bool) "seminaive derives no more" true
    (s2.Engine.derived <= s1.Engine.derived)

let test_two_idb_occurrences () =
  (* squaring rule: two IDB atoms in one body exercises the old/delta/new
     discipline of the semi-naive rewriting *)
  let p =
    Parser.parse_program
      "p(X, Z) :- e(X, Z). p(X, Z) :- p(X, Y), p(Y, Z)." ~goal:"p"
  in
  let dbs =
    [ path_db;
      Parser.parse_facts "e(1, 2). e(2, 1).";
      Parser.parse_facts "e(1, 2). e(2, 3). e(3, 4). e(4, 5). e(5, 6)." ]
  in
  List.iter
    (fun db ->
      let a = Engine.evaluate ~strategy:Engine.Naive db p in
      let b = Engine.evaluate ~strategy:Engine.Seminaive db p in
      Alcotest.(check bool) "same closure" true (Relation.set_equal a b))
    dbs

let test_mutual_recursion () =
  (* even/odd distance from a source: two mutually recursive IDBs *)
  let p =
    Parser.parse_program
      "even(X) :- s(X). odd(Y) :- even(X), e(X, Y). even(Y) :- odd(X), e(X, Y)."
      ~goal:"even"
  in
  let db = Parser.parse_facts "s(0). e(0, 1). e(1, 2). e(2, 3). e(3, 0)." in
  let naive = Engine.evaluate ~strategy:Engine.Naive db p in
  let semi = Engine.evaluate ~strategy:Engine.Seminaive db p in
  Alcotest.(check bool) "strategies agree" true (Relation.set_equal naive semi);
  Alcotest.(check bool) "0 even" true (Relation.mem (Tuple.of_ints [ 0 ]) semi);
  Alcotest.(check bool) "2 even" true (Relation.mem (Tuple.of_ints [ 2 ]) semi);
  (* a cycle of even length preserves parity: even = {0, 2} exactly *)
  Alcotest.(check int) "parity preserved" 2 (Relation.cardinality semi);
  (* an odd cycle mixes parities: every vertex becomes both *)
  let db_odd = Parser.parse_facts "s(0). e(0, 1). e(1, 2). e(2, 0)." in
  Alcotest.(check int) "odd cycle mixes" 3
    (Relation.cardinality (Engine.evaluate db_odd p))

let test_goal_holds () =
  let reach =
    Parser.parse_program
      "r(X) :- s(X). r(Y) :- r(X), e(X, Y). goal :- r(X), t(X)."
      ~goal:"goal"
  in
  let db = Parser.parse_facts "e(1, 2). e(2, 3). s(1). t(3)." in
  Alcotest.(check bool) "reachable" true (Engine.goal_holds db reach);
  let db2 = Parser.parse_facts "e(1, 2). e(2, 3). s(3). t(1)." in
  Alcotest.(check bool) "not reachable" false (Engine.goal_holds db2 reach)

let test_facts_in_program () =
  let p =
    Parser.parse_program "base(1, 2). tc(X, Y) :- base(X, Y)." ~goal:"tc"
  in
  let r = Engine.evaluate Database.empty p in
  Alcotest.(check int) "fact-driven" 1 (Relation.cardinality r)

let test_name_collision () =
  let p = Parser.parse_program "e(X, Y) :- e(X, Y)." ~goal:"e" in
  Alcotest.(check bool) "collision rejected" true
    (try ignore (Engine.evaluate path_db p); false
     with Invalid_argument _ -> true)

let test_empty_edb () =
  let db = Parser.parse_facts "e(1, 1)." in
  (* program over a relation that exists but with a source relation missing
     is an error; give the full EDB instead *)
  let p =
    Parser.parse_program "r(X) :- s(X). r(Y) :- r(X), e(X, Y)." ~goal:"r"
  in
  let db = Database.add (Relation.create ~name:"s" ~schema:[ "x" ] []) db in
  let r = Engine.evaluate db p in
  Alcotest.(check bool) "empty fixpoint" true (Relation.is_empty r)

let test_vardi_family () =
  let rng = Random.State.make [| 9 |] in
  let db = Paradb_workload.Vardi.layered_instance rng ~layers:4 ~width:3 ~edge_prob:0.7 in
  List.iter
    (fun k ->
      let p = Paradb_workload.Vardi.program ~k in
      Alcotest.(check int) "idb arity" k (Program.arity p "reach");
      let naive = Engine.goal_holds ~strategy:Engine.Naive db p in
      let semi = Engine.goal_holds ~strategy:Engine.Seminaive db p in
      Alcotest.(check bool) "strategies agree" true (naive = semi))
    [ 1; 2 ]

let test_vardi_matches_reachability () =
  (* for k = 1 the family is plain source-target reachability *)
  let rng = Random.State.make [| 13 |] in
  for _ = 1 to 20 do
    let n = 4 + Random.State.int rng 4 in
    let edges = ref [] in
    for _ = 1 to 8 do
      edges := (Random.State.int rng n, Random.State.int rng n) :: !edges
    done;
    let src = Random.State.int rng n and tgt = Random.State.int rng n in
    let db =
      Paradb_workload.Vardi.database ~edges:!edges ~sources:[ src ]
        ~targets:[ tgt ]
    in
    let expected =
      let g = Paradb_graph.Digraph.of_edges n !edges in
      (Paradb_graph.Digraph.reachable g src).(tgt)
    in
    Alcotest.(check bool) "k=1 is reachability" expected
      (Engine.goal_holds db (Paradb_workload.Vardi.program ~k:1))
  done

let test_rounds_bounded () =
  let stats = Engine.new_stats () in
  ignore (Engine.evaluate ~stats path_db tc_program);
  (* fixpoint over 4 nodes: at most n^r + 1 = 17 rounds, really ~4 *)
  Alcotest.(check bool) "rounds sane" true (stats.Engine.rounds <= 6)

let qcheck_tests =
  [
    Qgen.seeded_property ~name:"naive = seminaive on random graphs" ~count:60
      (fun rng ->
        let n = 3 + Random.State.int rng 6 in
        let facts =
          String.concat " "
            (List.init
               (2 + Random.State.int rng 15)
               (fun _ ->
                 Printf.sprintf "e(%d, %d)." (Random.State.int rng n)
                   (Random.State.int rng n)))
        in
        let db = Parser.parse_facts facts in
        Relation.set_equal
          (Engine.evaluate ~strategy:Engine.Naive db tc_program)
          (Engine.evaluate ~strategy:Engine.Seminaive db tc_program));
    Qgen.seeded_property ~name:"naive = seminaive with two IDB atoms" ~count:40
      (fun rng ->
        let p =
          Parser.parse_program
            "p(X, Z) :- e(X, Z). p(X, Z) :- p(X, Y), p(Y, Z)." ~goal:"p"
        in
        let n = 3 + Random.State.int rng 5 in
        let facts =
          String.concat " "
            (List.init
               (2 + Random.State.int rng 10)
               (fun _ ->
                 Printf.sprintf "e(%d, %d)." (Random.State.int rng n)
                   (Random.State.int rng n)))
        in
        let db = Parser.parse_facts facts in
        Relation.set_equal
          (Engine.evaluate ~strategy:Engine.Naive db p)
          (Engine.evaluate ~strategy:Engine.Seminaive db p));
    Qgen.seeded_property ~name:"tc is transitively closed" ~count:60
      (fun rng ->
        let n = 3 + Random.State.int rng 5 in
        let facts =
          String.concat " "
            (List.init
               (2 + Random.State.int rng 10)
               (fun _ ->
                 Printf.sprintf "e(%d, %d)." (Random.State.int rng n)
                   (Random.State.int rng n)))
        in
        let db = Parser.parse_facts facts in
        let tc = Engine.evaluate db tc_program in
        (* closed under composition *)
        let ok = ref true in
        Relation.iter
          (fun row1 ->
            Relation.iter
              (fun row2 ->
                if Paradb_relational.Value.equal row1.(1) row2.(0) then
                  if not (Relation.mem [| row1.(0); row2.(1) |] tc) then
                    ok := false)
              tc)
          tc;
        !ok);
  ]

let () =
  Alcotest.run "datalog"
    [
      ( "engine",
        [
          Alcotest.test_case "transitive closure" `Quick test_transitive_closure;
          Alcotest.test_case "cycle" `Quick test_cycle;
          Alcotest.test_case "strategies agree" `Quick test_naive_equals_seminaive;
          Alcotest.test_case "seminaive work" `Quick test_seminaive_fewer_derivations;
          Alcotest.test_case "two idb occurrences" `Quick test_two_idb_occurrences;
          Alcotest.test_case "mutual recursion" `Quick test_mutual_recursion;
          Alcotest.test_case "goal holds" `Quick test_goal_holds;
          Alcotest.test_case "program facts" `Quick test_facts_in_program;
          Alcotest.test_case "name collision" `Quick test_name_collision;
          Alcotest.test_case "empty edb" `Quick test_empty_edb;
          Alcotest.test_case "rounds bounded" `Quick test_rounds_bounded;
        ] );
      ( "vardi family",
        [
          Alcotest.test_case "strategies agree" `Quick test_vardi_family;
          Alcotest.test_case "k=1 reachability" `Quick test_vardi_matches_reachability;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
