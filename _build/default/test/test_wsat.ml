module Circuit = Paradb_wsat.Circuit
module Formula = Paradb_wsat.Formula
module Cnf = Paradb_wsat.Cnf
module Graph = Paradb_graph.Graph

(* ------------------------------------------------------------------ *)
(* Circuits *)

(* (x0 & x1) | !x2 *)
let example_circuit =
  Circuit.make ~n_inputs:3
    [|
      Circuit.G_input 0;
      Circuit.G_input 1;
      Circuit.G_input 2;
      Circuit.G_and [ 0; 1 ];
      Circuit.G_not 2;
      Circuit.G_or [ 3; 4 ];
    |]
    ~output:5

let test_circuit_eval () =
  Alcotest.(check bool) "tt f" true (Circuit.eval example_circuit [| true; true; true |]);
  Alcotest.(check bool) "ff f" true (Circuit.eval example_circuit [| false; false; false |]);
  Alcotest.(check bool) "f t t" false (Circuit.eval example_circuit [| false; true; true |])

let test_circuit_validation () =
  Alcotest.(check bool) "forward ref rejected" true
    (try
       ignore (Circuit.make ~n_inputs:1 [| Circuit.G_and [ 1 ]; Circuit.G_input 0 |] ~output:0);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad input rejected" true
    (try ignore (Circuit.make ~n_inputs:1 [| Circuit.G_input 5 |] ~output:0); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad output rejected" true
    (try ignore (Circuit.make ~n_inputs:1 [| Circuit.G_input 0 |] ~output:7); false
     with Invalid_argument _ -> true)

let test_circuit_monotone_depth () =
  Alcotest.(check bool) "not monotone" false (Circuit.is_monotone example_circuit);
  (* depth: NOT on an input is not counted *)
  Alcotest.(check int) "depth" 2 (Circuit.depth example_circuit);
  let mono =
    Circuit.make ~n_inputs:2
      [| Circuit.G_input 0; Circuit.G_input 1; Circuit.G_or [ 0; 1 ] |]
      ~output:2
  in
  Alcotest.(check bool) "monotone" true (Circuit.is_monotone mono);
  Alcotest.(check int) "depth 1" 1 (Circuit.depth mono)

let test_weight_k_assignments () =
  let count n k = Seq.length (Circuit.weight_k_assignments n k) in
  Alcotest.(check int) "5 choose 2" 10 (count 5 2);
  Alcotest.(check int) "4 choose 0" 1 (count 4 0);
  Alcotest.(check int) "4 choose 4" 1 (count 4 4);
  Alcotest.(check int) "4 choose 5" 0 (count 4 5);
  (* every assignment has the right weight *)
  Seq.iter
    (fun a ->
      let w = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 a in
      Alcotest.(check int) "weight" 3 w)
    (Circuit.weight_k_assignments 6 3)

let test_circuit_weighted_sat () =
  (* (x0 & x1) | !x2 : weight-2 solutions include {x0,x1} *)
  (match Circuit.weighted_sat example_circuit 2 with
  | Some a -> Alcotest.(check bool) "satisfies" true (Circuit.eval example_circuit a)
  | None -> Alcotest.fail "expected solution");
  (* all-AND circuit needs all inputs *)
  let all_and =
    Circuit.make ~n_inputs:3
      [| Circuit.G_input 0; Circuit.G_input 1; Circuit.G_input 2; Circuit.G_and [ 0; 1; 2 ] |]
      ~output:3
  in
  Alcotest.(check bool) "weight 2 fails" false (Circuit.weighted_sat_exists all_and 2);
  Alcotest.(check bool) "weight 3 works" true (Circuit.weighted_sat_exists all_and 3)

(* ------------------------------------------------------------------ *)
(* Formulas *)

let test_formula_eval () =
  let f = Formula.(conj [ disj [ var 0; neg (var 1) ]; var 2 ]) in
  Alcotest.(check bool) "tft" true (Formula.eval f [| true; false; true |]);
  Alcotest.(check bool) "ftt" false (Formula.eval f [| false; true; true |]);
  Alcotest.(check int) "n_vars" 3 (Formula.n_vars f);
  Alcotest.(check bool) "not monotone" false (Formula.is_monotone f)

let test_formula_nnf () =
  let f = Formula.(neg (conj [ var 0; neg (var 1) ])) in
  let n = Formula.nnf f in
  let rec negs_on_vars = function
    | Formula.F_not (Formula.F_var _) -> true
    | Formula.F_not _ -> false
    | Formula.F_const _ | Formula.F_var _ -> true
    | Formula.F_and fs | Formula.F_or fs -> List.for_all negs_on_vars fs
  in
  Alcotest.(check bool) "nnf shape" true (negs_on_vars n);
  (* semantics preserved *)
  List.iter
    (fun a -> Alcotest.(check bool) "same" (Formula.eval f a) (Formula.eval n a))
    [ [| true; true |]; [| true; false |]; [| false; true |]; [| false; false |] ]

let test_formula_occurrences () =
  let f = Formula.(conj [ var 0; neg (var 1); var 0 ]) in
  Alcotest.(check (list (pair int bool))) "occurrences"
    [ (0, true); (1, false); (0, true) ]
    (Formula.occurrences f)

let test_formula_to_circuit () =
  let rng = Random.State.make [| 21 |] in
  for _ = 1 to 30 do
    let f = Formula.random rng ~n_vars:4 ~depth:3 in
    let c = Formula.to_circuit ~n_vars:4 f in
    Seq.iter
      (fun a ->
        Alcotest.(check bool) "circuit agrees" (Formula.eval f a) (Circuit.eval c a))
      (Circuit.weight_k_assignments 4 2)
  done

let test_formula_weighted_sat_universe () =
  (* x0 with universe of 3 variables: weight 2 satisfiable (x0 plus a
     padding variable), but weight 2 over the formula's own single
     variable is not *)
  let f = Formula.var 0 in
  Alcotest.(check bool) "padded" true (Formula.weighted_sat_exists ~n_vars:3 f 2);
  Alcotest.(check bool) "unpadded" false (Formula.weighted_sat_exists f 2)

(* ------------------------------------------------------------------ *)
(* CNF *)

let test_cnf_eval () =
  let cnf =
    Cnf.make ~n_vars:3 [ [ Cnf.pos 0; Cnf.neg 1 ]; [ Cnf.pos 2 ] ]
  in
  Alcotest.(check bool) "eval" true (Cnf.eval cnf [| true; true; true |]);
  Alcotest.(check bool) "eval2" false (Cnf.eval cnf [| false; true; true |]);
  Alcotest.(check bool) "is 2cnf" true (Cnf.is_2cnf cnf);
  Alcotest.(check bool) "is 3cnf" true (Cnf.is_3cnf cnf);
  Alcotest.(check bool) "not all negative" false (Cnf.all_negative cnf);
  Alcotest.(check bool) "range checked" true
    (try ignore (Cnf.make ~n_vars:1 [ [ Cnf.pos 3 ] ]); false
     with Invalid_argument _ -> true)

let test_cnf_formula_agree () =
  let cnf =
    Cnf.make ~n_vars:3 [ [ Cnf.neg 0; Cnf.neg 1 ]; [ Cnf.neg 1; Cnf.neg 2 ] ]
  in
  let f = Cnf.to_formula cnf in
  Seq.iter
    (fun a -> Alcotest.(check bool) "agree" (Cnf.eval cnf a) (Formula.eval f a))
    (Circuit.weight_k_assignments 3 1)

let test_neg2cnf_solver () =
  (* conflict graph path 0-1-2: max independent set 2 *)
  let cnf =
    Cnf.make ~n_vars:3 [ [ Cnf.neg 0; Cnf.neg 1 ]; [ Cnf.neg 1; Cnf.neg 2 ] ]
  in
  Alcotest.(check bool) "weight 2" true (Cnf.weighted_sat_neg2cnf cnf 2 <> None);
  Alcotest.(check bool) "weight 3" true (Cnf.weighted_sat_neg2cnf cnf 3 = None);
  (match Cnf.weighted_sat_neg2cnf cnf 2 with
  | Some a -> Alcotest.(check bool) "valid" true (Cnf.eval cnf a)
  | None -> Alcotest.fail "expected");
  (* unit clause blocks a variable *)
  let blocked = Cnf.make ~n_vars:2 [ [ Cnf.neg 0 ] ] in
  (match Cnf.weighted_sat_neg2cnf blocked 1 with
  | Some a -> Alcotest.(check bool) "picked free var" true a.(1)
  | None -> Alcotest.fail "expected");
  Alcotest.(check bool) "guard" true
    (try ignore (Cnf.weighted_sat_neg2cnf (Cnf.make ~n_vars:1 [ [ Cnf.pos 0 ] ]) 1); false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Alternating weighted satisfiability *)

module A = Paradb_wsat.Alternating

let test_alternating_subsets () =
  Alcotest.(check int) "4 choose 2" 6 (Seq.length (A.subsets [ 3; 5; 7; 9 ] 2));
  Alcotest.(check int) "choose 0" 1 (Seq.length (A.subsets [ 1; 2 ] 0));
  Alcotest.(check int) "choose too many" 0 (Seq.length (A.subsets [ 1 ] 2));
  Seq.iter
    (fun sub -> Alcotest.(check int) "size" 2 (List.length sub))
    (A.subsets [ 0; 1; 2; 3 ] 2)

let test_alternating_validate () =
  Alcotest.(check bool) "overlap rejected" true
    (try
       A.validate ~n_vars:3
         [ { A.quantifier = A.Q_exists; vars = [ 0; 1 ]; weight = 1 };
           { A.quantifier = A.Q_forall; vars = [ 1; 2 ]; weight = 1 } ];
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "weight too big" true
    (try
       A.validate ~n_vars:2
         [ { A.quantifier = A.Q_exists; vars = [ 0 ]; weight = 2 } ];
       false
     with Invalid_argument _ -> true)

let test_alternating_holds () =
  (* circuit: x0 & !x1 ... use formula for negation *)
  let f = Formula.(conj [ var 0; neg (var 1) ]) in
  (* E{x0} A{x1}: exists weight-1 choice of {x0} (must take x0), forall
     weight-0 of {x1} (x1 stays false) -> true *)
  Alcotest.(check bool) "E then A weight 0" true
    (A.holds_formula f
       [ { A.quantifier = A.Q_exists; vars = [ 0 ]; weight = 1 };
         { A.quantifier = A.Q_forall; vars = [ 1 ]; weight = 0 } ]);
  (* forall weight-1 of {x1} forces x1 true -> false *)
  Alcotest.(check bool) "E then A weight 1" false
    (A.holds_formula f
       [ { A.quantifier = A.Q_exists; vars = [ 0 ]; weight = 1 };
         { A.quantifier = A.Q_forall; vars = [ 1 ]; weight = 1 } ]);
  (* OR circuit: forall single choices of two vars, each satisfies *)
  let g = Formula.(disj [ var 0; var 1 ]) in
  Alcotest.(check bool) "forall either" true
    (A.holds_formula g
       [ { A.quantifier = A.Q_forall; vars = [ 0; 1 ]; weight = 1 } ]);
  let h = Formula.var 0 in
  Alcotest.(check bool) "forall may pick the other" false
    (A.holds_formula ~n_vars:2 h
       [ { A.quantifier = A.Q_forall; vars = [ 0; 1 ]; weight = 1 } ])

let test_alternating_pure_exists_is_weighted_sat () =
  let rng = Random.State.make [| 41 |] in
  for _ = 1 to 30 do
    let f = Formula.random rng ~n_vars:4 ~depth:2 in
    let k = Random.State.int rng 5 in
    let blocks =
      [ { A.quantifier = A.Q_exists; vars = [ 0; 1; 2; 3 ]; weight = k } ]
    in
    if k <= 4 then
      Alcotest.(check bool) "matches weighted sat"
        (Formula.weighted_sat_exists ~n_vars:4 f k)
        (A.holds_formula ~n_vars:4 f blocks)
  done

let qcheck_tests =
  [
    Qgen.seeded_property ~name:"neg2cnf solver = brute force" ~count:80
      (fun rng ->
        let n = 2 + Random.State.int rng 5 in
        let clauses =
          List.init (Random.State.int rng 6) (fun _ ->
              let a = Random.State.int rng n and b = Random.State.int rng n in
              [ Cnf.neg a; Cnf.neg b ])
        in
        let cnf = Cnf.make ~n_vars:n clauses in
        let k = Random.State.int rng (n + 1) in
        (Cnf.weighted_sat_neg2cnf cnf k <> None) = Cnf.weighted_sat_exists cnf k);
    Qgen.seeded_property ~name:"formula -> circuit preserves weighted sat"
      ~count:60 (fun rng ->
        let f = Formula.random rng ~n_vars:4 ~depth:2 in
        let c = Formula.to_circuit ~n_vars:4 f in
        let k = Random.State.int rng 5 in
        Formula.weighted_sat_exists ~n_vars:4 f k = Circuit.weighted_sat_exists c k);
    Qgen.seeded_property ~name:"monotone circuits are upward closed" ~count:60
      (fun rng ->
        let c = Qgen.random_monotone_circuit rng ~n_inputs:4 ~n_gates:5 in
        (* flipping a 0 to 1 never turns the output off *)
        let ok = ref true in
        Seq.iter
          (fun a ->
            if Circuit.eval c a then
              Array.iteri
                (fun i v ->
                  if not v then begin
                    let a' = Array.copy a in
                    a'.(i) <- true;
                    if not (Circuit.eval c a') then ok := false
                  end)
                a)
          (Circuit.weight_k_assignments 4 2);
        !ok);
    Qgen.seeded_property ~name:"levels respect wiring" ~count:60 (fun rng ->
        let c = Qgen.random_monotone_circuit rng ~n_inputs:3 ~n_gates:6 in
        let levels = Circuit.levels c in
        let ok = ref true in
        Array.iteri
          (fun id gate ->
            match gate with
            | Circuit.G_and js | Circuit.G_or js ->
                List.iter (fun j -> if levels.(j) >= levels.(id) then ok := false) js
            | _ -> ())
          c.Circuit.gates;
        !ok);
  ]

let () =
  Alcotest.run "wsat"
    [
      ( "circuit",
        [
          Alcotest.test_case "eval" `Quick test_circuit_eval;
          Alcotest.test_case "validation" `Quick test_circuit_validation;
          Alcotest.test_case "monotone/depth" `Quick test_circuit_monotone_depth;
          Alcotest.test_case "weight-k enumeration" `Quick test_weight_k_assignments;
          Alcotest.test_case "weighted sat" `Quick test_circuit_weighted_sat;
        ] );
      ( "formula",
        [
          Alcotest.test_case "eval" `Quick test_formula_eval;
          Alcotest.test_case "nnf" `Quick test_formula_nnf;
          Alcotest.test_case "occurrences" `Quick test_formula_occurrences;
          Alcotest.test_case "to_circuit" `Quick test_formula_to_circuit;
          Alcotest.test_case "weighted sat universe" `Quick test_formula_weighted_sat_universe;
        ] );
      ( "cnf",
        [
          Alcotest.test_case "eval" `Quick test_cnf_eval;
          Alcotest.test_case "formula agreement" `Quick test_cnf_formula_agree;
          Alcotest.test_case "neg2cnf solver" `Quick test_neg2cnf_solver;
        ] );
      ( "alternating",
        [
          Alcotest.test_case "subsets" `Quick test_alternating_subsets;
          Alcotest.test_case "validate" `Quick test_alternating_validate;
          Alcotest.test_case "holds" `Quick test_alternating_holds;
          Alcotest.test_case "pure exists" `Quick test_alternating_pure_exists_is_weighted_sat;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
