module Relation = Paradb_relational.Relation
module Tuple = Paradb_relational.Tuple
module Yannakakis = Paradb_yannakakis.Yannakakis
module Join_tree = Paradb_hypergraph.Join_tree
module Cq_naive = Paradb_eval.Cq_naive
open Paradb_query

let db =
  Parser.parse_facts
    "e(1, 2). e(2, 3). e(3, 4). e(1, 3). r3(1, 2, 3). r3(2, 3, 4). u(2). u(3)."

let test_chain () =
  let q = Parser.parse_cq "ans(X, Y) :- e(X, Z), e(Z, Y)." in
  let r = Yannakakis.evaluate db q in
  Alcotest.(check bool) "matches naive" true
    (Relation.set_equal r (Cq_naive.evaluate db q))

let test_star () =
  let q = Parser.parse_cq "ans(X) :- e(X, Y), e(X, Z), u(Y), u(Z)." in
  let r = Yannakakis.evaluate db q in
  Alcotest.(check bool) "matches naive" true
    (Relation.set_equal r (Cq_naive.evaluate db q))

let test_mixed_arity () =
  let q = Parser.parse_cq "ans(A, C) :- r3(A, B, C), e(C, D), u(B)." in
  Alcotest.(check bool) "matches naive" true
    (Relation.set_equal (Yannakakis.evaluate db q) (Cq_naive.evaluate db q))

let test_cyclic_rejected () =
  let tri = Parser.parse_cq "goal :- e(X, Y), e(Y, Z), e(Z, X)." in
  Alcotest.(check bool) "raises" true
    (try ignore (Yannakakis.evaluate db tri); false
     with Yannakakis.Cyclic_query -> true)

let test_constraints_rejected () =
  let q = Parser.parse_cq "goal :- e(X, Y), X != Y." in
  Alcotest.(check bool) "raises" true
    (try ignore (Yannakakis.evaluate db q); false
     with Invalid_argument _ -> true)

let test_empty_result () =
  let q = Parser.parse_cq "ans(X) :- e(X, 9)." in
  Alcotest.(check bool) "empty" true (Relation.is_empty (Yannakakis.evaluate db q));
  Alcotest.(check bool) "unsat" false (Yannakakis.is_satisfiable db q)

let test_boolean () =
  Alcotest.(check bool) "sat" true
    (Yannakakis.is_satisfiable db (Parser.parse_cq "goal :- e(X, Y), u(Y)."));
  let r = Yannakakis.evaluate db (Parser.parse_cq "goal :- e(X, Y), u(Y).") in
  Alcotest.(check int) "0-ary single row" 1 (Relation.cardinality r)

let test_decide () =
  let q = Parser.parse_cq "ans(X, Y) :- e(X, Z), e(Z, Y)." in
  Alcotest.(check bool) "yes" true (Yannakakis.decide db q (Tuple.of_ints [ 1; 3 ]));
  Alcotest.(check bool) "no" false (Yannakakis.decide db q (Tuple.of_ints [ 4; 1 ]))

let test_disconnected_query () =
  let q = Parser.parse_cq "ans(X, Y) :- e(1, X), e(3, Y)." in
  Alcotest.(check bool) "matches naive" true
    (Relation.set_equal (Yannakakis.evaluate db q) (Cq_naive.evaluate db q))

let test_full_reducer_consistency () =
  let q = Parser.parse_cq "ans(X, Y, Z) :- e(X, Y), e(Y, Z), u(Y)." in
  match Join_tree.of_cq q with
  | None -> Alcotest.fail "acyclic expected"
  | Some tree ->
      let rels = Yannakakis.atom_relations db q in
      let reduced = Yannakakis.full_reducer tree rels in
      (* global consistency: every remaining tuple joins through *)
      let full =
        Array.fold_left
          (fun acc r ->
            match acc with
            | None -> Some r
            | Some a -> Some (Relation.natural_join a r))
          None reduced
      in
      (match full with
      | None -> Alcotest.fail "no relations"
      | Some full ->
          Array.iter
            (fun r ->
              let back = Relation.project (Relation.schema_list r) full in
              Alcotest.(check bool) "tuple participates" true
                (Relation.set_equal r back))
            reduced)

let test_atom_relations_selections () =
  (* constants and repeated variables are pushed into S_j *)
  let q = Parser.parse_cq "ans(X) :- r3(X, X, 3)." in
  let rels = Yannakakis.atom_relations db q in
  Alcotest.(check int) "one atom" 1 (Array.length rels);
  Alcotest.(check int) "no row survives" 0 (Relation.cardinality rels.(0));
  let q2 = Parser.parse_cq "ans(X) :- r3(1, X, 3)." in
  let rels2 = Yannakakis.atom_relations db q2 in
  Alcotest.(check int) "one row" 1 (Relation.cardinality rels2.(0));
  Alcotest.(check bool) "row is (2)" true
    (Relation.mem (Tuple.of_ints [ 2 ]) rels2.(0))

let qcheck_tests =
  [
    Qgen.seeded_property ~name:"yannakakis = naive on random acyclic queries"
      ~count:200 (fun rng ->
        let db = Qgen.tree_cq_database rng ~max_arity:3 ~domain_size:4 ~tuples:12 in
        let q =
          Qgen.random_tree_cq rng ~max_atoms:5 ~max_arity:3 ~neq_tries:0
            ~domain_size:4
        in
        Relation.set_equal (Yannakakis.evaluate db q) (Cq_naive.evaluate db q));
    Qgen.seeded_property ~name:"satisfiability agrees with evaluation"
      ~count:100 (fun rng ->
        let db = Qgen.tree_cq_database rng ~max_arity:3 ~domain_size:3 ~tuples:8 in
        let q =
          Qgen.random_tree_cq rng ~max_atoms:4 ~max_arity:3 ~neq_tries:0
            ~domain_size:3
        in
        Yannakakis.is_satisfiable db q
        = not (Relation.is_empty (Yannakakis.evaluate db q)));
  ]

let () =
  Alcotest.run "yannakakis"
    [
      ( "evaluate",
        [
          Alcotest.test_case "chain" `Quick test_chain;
          Alcotest.test_case "star" `Quick test_star;
          Alcotest.test_case "mixed arity" `Quick test_mixed_arity;
          Alcotest.test_case "cyclic rejected" `Quick test_cyclic_rejected;
          Alcotest.test_case "constraints rejected" `Quick test_constraints_rejected;
          Alcotest.test_case "empty result" `Quick test_empty_result;
          Alcotest.test_case "boolean" `Quick test_boolean;
          Alcotest.test_case "decide" `Quick test_decide;
          Alcotest.test_case "disconnected" `Quick test_disconnected_query;
        ] );
      ( "internals",
        [
          Alcotest.test_case "full reducer" `Quick test_full_reducer_consistency;
          Alcotest.test_case "atom relations" `Quick test_atom_relations_selections;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
