(* Random instance generators shared by the test suites.  All take an
   explicit [Random.State.t] so failures are reproducible from the seed. *)

module Database = Paradb_relational.Database
module Relation = Paradb_relational.Relation
module Value = Paradb_relational.Value
module Graph = Paradb_graph.Graph
module Circuit = Paradb_wsat.Circuit
open Paradb_query

let random_relation rng ~name ~arity ~domain_size ~tuples =
  let rows =
    List.init tuples (fun _ ->
        Array.init arity (fun _ -> Value.Int (Random.State.int rng domain_size)))
  in
  Relation.create ~name ~schema:(List.init arity (Printf.sprintf "a%d")) rows

let random_database rng ~schema ~domain_size ~tuples =
  Database.of_relations
    (List.map
       (fun (name, arity) ->
         random_relation rng ~name ~arity ~domain_size
           ~tuples:(1 + Random.State.int rng tuples))
       schema)

(* A random acyclic conjunctive query, acyclic by construction: each new
   atom shares exactly one variable with the variables introduced so far
   (so the atom hypergraph is a tree of "ears").  Relations are named by
   arity: r1, r2, r3. *)
let random_tree_cq rng ~max_atoms ~max_arity ~neq_tries ~domain_size =
  let n_atoms = 1 + Random.State.int rng max_atoms in
  let fresh = ref 0 in
  let new_var () =
    incr fresh;
    Printf.sprintf "v%d" (!fresh - 1)
  in
  let all_vars = ref [] in
  let atoms = ref [] in
  for i = 0 to n_atoms - 1 do
    let arity = 1 + Random.State.int rng max_arity in
    let shared =
      if i = 0 then new_var ()
      else List.nth !all_vars (Random.State.int rng (List.length !all_vars))
    in
    let rest =
      List.init (arity - 1) (fun _ ->
          (* occasionally a constant or a repeated variable *)
          match Random.State.int rng 6 with
          | 0 -> Term.int (Random.State.int rng domain_size)
          | 1 when !all_vars <> [] -> Term.var shared
          | _ -> Term.var (new_var ()))
    in
    let args = Term.var shared :: rest in
    let name = Printf.sprintf "r%d" arity in
    atoms := Atom.make name args :: !atoms;
    List.iter
      (fun v -> if not (List.mem v !all_vars) then all_vars := v :: !all_vars)
      (Term.vars args)
  done;
  let vars = Array.of_list !all_vars in
  let nv = Array.length vars in
  let constraints = ref [] in
  for _ = 1 to neq_tries do
    match Random.State.int rng 3 with
    | 0 when nv >= 2 ->
        let a = Random.State.int rng nv and b = Random.State.int rng nv in
        if a <> b then
          constraints :=
            Constr.neq (Term.var vars.(a)) (Term.var vars.(b)) :: !constraints
    | 1 ->
        let a = Random.State.int rng nv in
        constraints :=
          Constr.neq (Term.var vars.(a))
            (Term.int (Random.State.int rng domain_size))
          :: !constraints
    | _ -> ()
  done;
  let head_vars =
    List.filteri (fun i _ -> i mod 2 = 0) (Array.to_list vars)
  in
  Cq.make ~constraints:!constraints
    ~head:(List.map Term.var head_vars)
    !atoms

(* Database matching the r1/r2/r3 schema of [random_tree_cq]. *)
let tree_cq_database rng ~max_arity ~domain_size ~tuples =
  random_database rng
    ~schema:(List.init max_arity (fun i -> (Printf.sprintf "r%d" (i + 1), i + 1)))
    ~domain_size ~tuples

(* Random monotone circuit built bottom-up over a growing gate pool. *)
let random_monotone_circuit rng ~n_inputs ~n_gates =
  let gates = ref [] in
  let count = ref 0 in
  let emit g =
    gates := g :: !gates;
    incr count;
    !count - 1
  in
  let inputs = List.init n_inputs (fun i -> emit (Circuit.G_input i)) in
  let pool = ref inputs in
  for _ = 1 to n_gates do
    let pick () = List.nth !pool (Random.State.int rng (List.length !pool)) in
    let width = 1 + Random.State.int rng 3 in
    let children =
      List.sort_uniq Int.compare (List.init width (fun _ -> pick ()))
    in
    let id =
      emit
        (if Random.State.bool rng then Circuit.G_and children
         else Circuit.G_or children)
    in
    pool := id :: !pool
  done;
  Circuit.make ~n_inputs
    (Array.of_list (List.rev !gates))
    ~output:(List.hd !pool)

(* Random positive FO sentence over the relations of a random database. *)
let random_positive_sentence rng ~relations ~domain_size ~depth =
  let rels = Array.of_list relations in
  let bound = ref [] in
  let fresh = ref 0 in
  let rec go depth =
    if depth = 0 || (Random.State.int rng 3 = 0 && !bound <> []) then begin
      let name, arity = rels.(Random.State.int rng (Array.length rels)) in
      let args =
        List.init arity (fun _ ->
            if !bound <> [] && Random.State.bool rng then
              Term.var
                (List.nth !bound (Random.State.int rng (List.length !bound)))
            else Term.int (Random.State.int rng domain_size))
      in
      Fo.atom name args
    end
    else
      match Random.State.int rng 3 with
      | 0 ->
          let width = 2 + Random.State.int rng 2 in
          Fo.conj (List.init width (fun _ -> go (depth - 1)))
      | 1 ->
          let width = 2 + Random.State.int rng 2 in
          Fo.disj (List.init width (fun _ -> go (depth - 1)))
      | _ ->
          let x =
            incr fresh;
            Printf.sprintf "q%d" !fresh
          in
          bound := x :: !bound;
          let body = go (depth - 1) in
          bound := List.tl !bound;
          Fo.exists [ x ] body
  in
  (* Close the formula: any stray free variable would make it open; we
     only generate variables from [bound], so the result is closed. *)
  go depth

(* Wrap a deterministic seeded property as a QCheck test over seeds. *)
let seeded_property ~name ~count f =
  QCheck.Test.make ~name ~count QCheck.small_int (fun seed ->
      f (Random.State.make [| seed |]))
