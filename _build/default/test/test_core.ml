module Relation = Paradb_relational.Relation
module Database = Paradb_relational.Database
module Tuple = Paradb_relational.Tuple
module Value = Paradb_relational.Value
module Graph = Paradb_graph.Graph
module Hashing = Paradb_core.Hashing
module Ineq = Paradb_core.Ineq
module Engine = Paradb_core.Engine
module Comparisons = Paradb_core.Comparisons
module Color_coding = Paradb_core.Color_coding
module Cq_naive = Paradb_eval.Cq_naive
open Paradb_query

let db =
  Parser.parse_facts
    "ep(alice, p1). ep(alice, p2). ep(bob, p1). ep(carol, p3). ep(carol, p3)."

(* ------------------------------------------------------------------ *)
(* Hashing *)

let test_next_prime () =
  Alcotest.(check int) "after 1" 2 (Hashing.next_prime 1);
  Alcotest.(check int) "after 2" 3 (Hashing.next_prime 2);
  Alcotest.(check int) "after 10" 11 (Hashing.next_prime 10);
  Alcotest.(check int) "after 13" 17 (Hashing.next_prime 13);
  Alcotest.(check int) "after 0" 2 (Hashing.next_prime 0)

let test_default_trials () =
  Alcotest.(check int) "e^0" 1 (Hashing.default_trials ~c:1.0 ~k:0);
  Alcotest.(check bool) "e^3 about 20" true
    (let t = Hashing.default_trials ~c:1.0 ~k:3 in
     t >= 20 && t <= 21);
  Alcotest.(check bool) "c scales" true
    (Hashing.default_trials ~c:3.0 ~k:4 >= 3 * Hashing.default_trials ~c:1.0 ~k:4 - 2)

let domain_of_ints n = List.init n (fun i -> Value.Int i)

let test_trivial_function_for_small_k () =
  List.iter
    (fun family ->
      let fns = Hashing.functions family ~domain:(domain_of_ints 10) ~k:1 in
      Alcotest.(check int) "single fn" 1 (Seq.length fns))
    [ Hashing.Multiplicative_sweep; Hashing.Exhaustive;
      Hashing.Random_trials { trials = 50; seed = 0 } ]

let test_functions_in_range () =
  List.iter
    (fun family ->
      Seq.iter
        (fun f ->
          List.iter
            (fun v ->
              let c = f.Hashing.apply v in
              Alcotest.(check bool) "in range" true (c >= 0 && c < f.Hashing.range))
            (domain_of_ints 7))
        (Hashing.functions family ~domain:(domain_of_ints 7) ~k:3))
    [ Hashing.Multiplicative_sweep; Hashing.Exhaustive;
      Hashing.Random_trials { trials = 20; seed = 1 } ]

(* The deterministic sweep must be k-perfect: for EVERY k-subset some
   function separates it. *)
let test_sweep_is_k_perfect () =
  let domain = domain_of_ints 9 in
  let k = 3 in
  let fns = List.of_seq (Hashing.functions Hashing.Multiplicative_sweep ~domain ~k) in
  let rec subsets n k start =
    if k = 0 then [ [] ]
    else if start >= n then []
    else
      List.map (fun rest -> start :: rest) (subsets n (k - 1) (start + 1))
      @ subsets n k (start + 1)
  in
  List.iter
    (fun subset ->
      let values = List.map (fun i -> Value.Int i) subset in
      Alcotest.(check bool)
        (Printf.sprintf "separates {%s}" (String.concat "," (List.map string_of_int subset)))
        true
        (List.exists (fun f -> Hashing.is_injective_on f values) fns))
    (subsets 9 k 0)

let test_exhaustive_is_k_perfect () =
  let domain = domain_of_ints 5 in
  let fns = List.of_seq (Hashing.functions Hashing.Exhaustive ~domain ~k:2) in
  Alcotest.(check int) "2^5 functions" 32 (List.length fns);
  List.iter
    (fun (a, b) ->
      Alcotest.(check bool) "separates" true
        (List.exists
           (fun f -> Hashing.is_injective_on f [ Value.Int a; Value.Int b ])
           fns))
    [ (0, 1); (0, 4); (2, 3); (1, 4) ]

let test_exhaustive_guard () =
  Alcotest.(check bool) "too large" true
    (try
       ignore
         (Seq.length (Hashing.functions Hashing.Exhaustive ~domain:(domain_of_ints 40) ~k:5));
       false
     with Invalid_argument _ -> true)

let test_random_family_replayable () =
  let fam = Hashing.Random_trials { trials = 5; seed = 7 } in
  let run () =
    List.of_seq
      (Seq.map
         (fun f -> List.map f.Hashing.apply (domain_of_ints 6))
         (Hashing.functions fam ~domain:(domain_of_ints 6) ~k:3))
  in
  Alcotest.(check bool) "same colors twice" true (run () = run ())

let test_random_success_probability () =
  (* a random coloring separates 3 fixed values with probability
     3!/27 = 2/9; with 60 trials some function separates them whp *)
  let fns =
    Hashing.functions (Hashing.Random_trials { trials = 60; seed = 3 })
      ~domain:(domain_of_ints 30) ~k:3
  in
  let values = [ Value.Int 4; Value.Int 11; Value.Int 23 ] in
  Alcotest.(check bool) "some trial separates" true
    (Seq.exists (fun f -> Hashing.is_injective_on f values) fns)

(* ------------------------------------------------------------------ *)
(* Ineq partition *)

let test_partition () =
  let q =
    Parser.parse_cq
      "ans() :- e(X, Y), e(Y, Z), X != Y, X != Z, Y != 5."
  in
  let part = Ineq.partition q in
  (* X,Y co-occur in the first atom -> I2; X,Z never co-occur -> I1;
     Y != 5 is a constant constraint -> I2 *)
  Alcotest.(check int) "i1" 1 (List.length part.Ineq.i1);
  Alcotest.(check int) "i2" 2 (List.length part.Ineq.i2);
  Alcotest.(check (list string)) "v1" [ "X"; "Z" ] part.Ineq.v1;
  Alcotest.(check int) "k" 2 part.Ineq.k;
  Alcotest.(check (list (pair string string))) "pairs" [ ("X", "Z") ]
    (Ineq.i1_pairs part)

let test_partition_rejects_comparisons () =
  let q = Parser.parse_cq "ans() :- e(X, Y), X < Y." in
  Alcotest.(check bool) "raises" true
    (try ignore (Ineq.partition q); false with Invalid_argument _ -> true)

let test_i2_filter () =
  let q = Parser.parse_cq "ans() :- e(X, Y), X != Y, X != 1." in
  let part = Ineq.partition q in
  let ok = Binding.of_list [ ("X", Value.Int 2); ("Y", Value.Int 3) ] in
  let same = Binding.of_list [ ("X", Value.Int 2); ("Y", Value.Int 2) ] in
  let one = Binding.of_list [ ("X", Value.Int 1); ("Y", Value.Int 3) ] in
  Alcotest.(check bool) "passes" true (Ineq.i2_filter part [ "X"; "Y" ] ok);
  Alcotest.(check bool) "equal blocked" false (Ineq.i2_filter part [ "X"; "Y" ] same);
  Alcotest.(check bool) "constant blocked" false (Ineq.i2_filter part [ "X"; "Y" ] one);
  (* constraints outside the atom's variables are skipped *)
  Alcotest.(check bool) "skips foreign" true
    (Ineq.i2_filter part [ "Y" ] (Binding.of_list [ ("Y", Value.Int 1) ]))

(* ------------------------------------------------------------------ *)
(* Engine on the paper's examples *)

let test_employees_multi_project () =
  let q = Parser.parse_cq "g(E) :- ep(E, P), ep(E, P2), P != P2." in
  let r = Engine.evaluate db q in
  Alcotest.(check int) "only alice" 1 (Relation.cardinality r);
  Alcotest.(check bool) "alice" true
    (Relation.mem [| Value.Str "alice" |] r);
  Alcotest.(check bool) "matches naive" true
    (Relation.set_equal r (Cq_naive.evaluate db q))

let test_students_example () =
  let sdb =
    Parser.parse_facts
      "sd(ann, cs). sd(bob, math). sc(ann, algo). sc(bob, algo). cd(algo, cs)."
  in
  let q = Parser.parse_cq "g(S) :- sd(S, D), sc(S, C), cd(C, D2), D != D2." in
  let r = Engine.evaluate sdb q in
  Alcotest.(check int) "only bob" 1 (Relation.cardinality r);
  Alcotest.(check bool) "bob" true (Relation.mem [| Value.Str "bob" |] r)

let test_engine_cyclic_rejected () =
  let q = Parser.parse_cq "goal :- ep(X, Y), ep(Y, Z), ep(Z, X)." in
  Alcotest.(check bool) "raises" true
    (try ignore (Engine.is_satisfiable db q); false
     with Engine.Cyclic_query -> true)

let test_engine_no_constraints_is_yannakakis () =
  let q = Parser.parse_cq "ans(E) :- ep(E, P)." in
  Alcotest.(check bool) "same" true
    (Relation.set_equal (Engine.evaluate db q)
       (Paradb_yannakakis.Yannakakis.evaluate db q))

let test_engine_stats () =
  let q = Parser.parse_cq "g(E) :- ep(E, P), ep(E, P2), P != P2." in
  let stats = Engine.new_stats () in
  ignore (Engine.is_satisfiable ~stats db q);
  Alcotest.(check bool) "tried >= 1" true (stats.Engine.trials >= 1);
  Alcotest.(check bool) "found" true (stats.Engine.successes >= 1)

let test_engine_unsat_early_empty () =
  let q = Parser.parse_cq "g(E) :- ep(E, zzz), ep(E, P2), zzz != P2." in
  (* "zzz" never appears as a project: base relation empty *)
  Alcotest.(check bool) "unsat" false (Engine.is_satisfiable db q)

let test_decide () =
  let q = Parser.parse_cq "g(E) :- ep(E, P), ep(E, P2), P != P2." in
  Alcotest.(check bool) "alice yes" true
    (Engine.decide db q [| Value.Str "alice" |]);
  Alcotest.(check bool) "bob no" false (Engine.decide db q [| Value.Str "bob" |])

let test_single_coloring_soundness () =
  (* Q_h(d) is a subset of Q(d) for every coloring *)
  let q = Parser.parse_cq "g(E) :- ep(E, P), ep(E, P2), P != P2." in
  let domain = Value.Set.elements (Database.domain db) in
  let full = Cq_naive.evaluate db q in
  Seq.iter
    (fun h ->
      let qh = Engine.evaluate_with db q h in
      Relation.iter
        (fun row -> Alcotest.(check bool) "subset" true (Relation.mem row full))
        qh)
    (Hashing.functions (Hashing.Random_trials { trials = 30; seed = 5 })
       ~domain ~k:2)

(* I1 inequalities checked across a deeper tree *)
let test_long_chain_i1 () =
  let cdb = Parser.parse_facts "e(1, 2). e(2, 3). e(3, 1). e(3, 4)." in
  let q =
    Parser.parse_cq
      "ans(A, D) :- e(A, B), e(B, C), e(C, D), A != C, B != D, A != D."
  in
  Alcotest.(check bool) "matches naive" true
    (Relation.set_equal (Engine.evaluate cdb q) (Cq_naive.evaluate cdb q))

(* ------------------------------------------------------------------ *)
(* Formula extension *)

let test_formula_disjunction () =
  let cdb = Parser.parse_facts "e(1, 2). e(2, 1). e(2, 2)." in
  let q = Parser.parse_cq "ans(X, Z) :- e(X, Y), e(Y, Z)." in
  (* X != Z or Y != 2 *)
  let f =
    Ineq_formula.disj
      [
        Ineq_formula.atom (Constr.neq (Term.var "X") (Term.var "Z"));
        Ineq_formula.atom (Constr.neq (Term.var "Y") (Term.int 2));
      ]
  in
  let got = Engine.evaluate_formula cdb q f in
  (* reference: filter naive bindings *)
  let expected =
    List.filter_map
      (fun b -> if Ineq_formula.holds b f then Some (Cq.head_tuple b q) else None)
      (Cq_naive.all_bindings cdb q)
  in
  let expected_rel = Relation.create ~name:"ans" ~schema:[ "a0"; "a1" ] expected in
  Alcotest.(check bool) "matches reference" true (Relation.set_equal got expected_rel)

let test_formula_guard () =
  let q = Parser.parse_cq "ans(X) :- ep(X, Y)." in
  let f = Ineq_formula.atom (Constr.lt (Term.var "X") (Term.var "Y")) in
  Alcotest.(check bool) "rejects comparisons" true
    (try ignore (Engine.is_satisfiable_formula db q f); false
     with Invalid_argument _ -> true)

let test_formula_v_driver () =
  let cdb = Parser.parse_facts "e(1, 2). e(2, 1). e(2, 3). e(3, 1)." in
  let q = Parser.parse_cq "ans(X, Z) :- e(X, Y), e(Y, Z)." in
  (* conjunctive x != c atoms plus a var-var disjunction *)
  let f =
    Ineq_formula.conj
      [
        Ineq_formula.atom (Constr.neq (Term.var "X") (Term.int 1));
        Ineq_formula.atom (Constr.neq (Term.var "Y") (Term.int 3));
        Ineq_formula.disj
          [
            Ineq_formula.atom (Constr.neq (Term.var "X") (Term.var "Z"));
            Ineq_formula.atom (Constr.neq (Term.var "Y") (Term.var "Z"));
          ];
      ]
  in
  let via_v = Engine.evaluate_formula_v cdb q f in
  let via_q = Engine.evaluate_formula cdb q f in
  Alcotest.(check bool) "both drivers agree" true (Relation.set_equal via_v via_q);
  (* reference: naive bindings filtered by the formula *)
  let expected =
    List.filter_map
      (fun b -> if Ineq_formula.holds b f then Some (Cq.head_tuple b q) else None)
      (Cq_naive.all_bindings cdb q)
  in
  let expected_rel = Relation.create ~name:"ans" ~schema:[ "a0"; "a1" ] expected in
  Alcotest.(check bool) "matches reference" true
    (Relation.set_equal via_v expected_rel);
  Alcotest.(check bool) "satisfiability agrees" true
    (Engine.is_satisfiable_formula_v cdb q f
    = not (Relation.is_empty expected_rel))

let test_split_constant_conjuncts () =
  let f =
    Ineq_formula.conj
      [
        Ineq_formula.atom (Constr.neq (Term.var "X") (Term.int 1));
        Ineq_formula.atom (Constr.neq (Term.var "X") (Term.var "Y"));
        Ineq_formula.atom (Constr.neq (Term.int 2) (Term.var "Z"));
      ]
  in
  let consts, rest = Engine.split_constant_conjuncts f in
  Alcotest.(check int) "two constant atoms" 2 (List.length consts);
  (match rest with
  | Ineq_formula.Atom _ -> ()
  | _ -> Alcotest.fail "expected the var-var atom to remain")

(* ------------------------------------------------------------------ *)
(* Comparisons (Klug preprocessing) *)

let test_comparisons_consistent () =
  let q = Parser.parse_cq "ans(X, Y) :- e(X, Y), X < Y." in
  (match Comparisons.preprocess q with
  | Comparisons.Collapsed q' ->
      Alcotest.(check int) "kept" 1 (List.length q'.Cq.constraints)
  | Comparisons.Inconsistent -> Alcotest.fail "consistent system")

let test_comparisons_cycle_inconsistent () =
  let q = Parser.parse_cq "ans() :- e(X, Y), X < Y, Y < X." in
  Alcotest.(check bool) "inconsistent" true
    (Comparisons.preprocess q = Comparisons.Inconsistent);
  let q2 = Parser.parse_cq "ans() :- e(X, Y), X < X." in
  Alcotest.(check bool) "self strict" true
    (Comparisons.preprocess q2 = Comparisons.Inconsistent)

let test_comparisons_collapse () =
  (* X <= Y and Y <= X force X = Y *)
  let q = Parser.parse_cq "ans(X, Y) :- e(X, Y), X <= Y, Y <= X." in
  (match Comparisons.preprocess q with
  | Comparisons.Collapsed q' ->
      Alcotest.(check int) "collapsed to one var" 1 (Cq.num_vars q');
      Alcotest.(check int) "no constraints left" 0 (List.length q'.Cq.constraints)
  | Comparisons.Inconsistent -> Alcotest.fail "consistent");
  (* collapse onto a constant *)
  let q2 = Parser.parse_cq "ans(X) :- e(X, Y), X <= 3, 3 <= X." in
  (match Comparisons.preprocess q2 with
  | Comparisons.Collapsed q' ->
      Alcotest.(check bool) "head is constant 3" true
        (match q'.Cq.head with [ Term.Const (Value.Int 3) ] -> true | _ -> false)
  | Comparisons.Inconsistent -> Alcotest.fail "consistent")

let test_comparisons_constants_order () =
  (* constants are ordered: 3 <= X <= 2 is inconsistent *)
  let q = Parser.parse_cq "ans() :- e(X, Y), 3 <= X, X <= 2." in
  Alcotest.(check bool) "inconsistent" true
    (Comparisons.preprocess q = Comparisons.Inconsistent)

let test_comparisons_neq_after_collapse () =
  let q = Parser.parse_cq "ans() :- e(X, Y), X <= Y, Y <= X, X != Y." in
  Alcotest.(check bool) "collapse makes != unsatisfiable" true
    (Comparisons.preprocess q = Comparisons.Inconsistent)

let test_comparisons_evaluate () =
  let sdb =
    Parser.parse_facts
      "em(bob, alice). em(carol, alice). es(alice, 100). es(bob, 120). es(carol, 80)."
  in
  let q = Parser.parse_cq "g(E) :- em(E, M), es(E, S), es(M, S2), S2 < S." in
  let r = Comparisons.evaluate sdb q in
  Alcotest.(check int) "one overpaid" 1 (Relation.cardinality r);
  Alcotest.(check bool) "bob" true (Relation.mem [| Value.Str "bob" |] r);
  Alcotest.(check bool) "sat" true (Comparisons.is_satisfiable sdb q)

let test_comparisons_dispatch_to_engine () =
  (* after preprocessing, a pure != acyclic query goes through the engine *)
  let q = Parser.parse_cq "g(E) :- ep(E, P), ep(E, P2), P != P2." in
  let r = Comparisons.evaluate db q in
  Alcotest.(check bool) "same as engine" true
    (Relation.set_equal r (Engine.evaluate db q))

(* ------------------------------------------------------------------ *)
(* Color coding *)

let test_path_query_shape () =
  let q = Color_coding.path_query ~k:4 in
  Alcotest.(check int) "atoms" 3 (List.length q.Cq.body);
  Alcotest.(check int) "all pairs" 6 (List.length q.Cq.constraints);
  let part = Ineq.partition q in
  (* adjacent pairs are I2 (co-occur in an edge atom), the rest I1 *)
  Alcotest.(check int) "i2 = adjacent" 3 (List.length part.Ineq.i2);
  Alcotest.(check int) "i1 = non-adjacent" 3 (List.length part.Ineq.i1)

let test_paths_on_known_graphs () =
  let path5 = Graph.path_graph 5 in
  Alcotest.(check bool) "path5 has p5" true (Color_coding.has_simple_path path5 5);
  Alcotest.(check bool) "path5 no p6" false (Color_coding.has_simple_path path5 6);
  (match Color_coding.find_simple_path path5 5 with
  | Some p -> Alcotest.(check bool) "witness" true (Graph.is_simple_path path5 p)
  | None -> Alcotest.fail "expected");
  let star = Graph.of_edges 5 [ (0, 1); (0, 2); (0, 3); (0, 4) ] in
  Alcotest.(check bool) "star has p3" true (Color_coding.has_simple_path star 3);
  Alcotest.(check bool) "star no p4" false (Color_coding.has_simple_path star 4)

let test_path_k1_k0 () =
  let g = Graph.create 3 in
  Alcotest.(check bool) "k=0" true (Color_coding.has_simple_path g 0);
  Alcotest.(check bool) "k=1 isolated vertices" true (Color_coding.has_simple_path g 1);
  Alcotest.(check bool) "k=2 no edges" false (Color_coding.has_simple_path g 2)

let test_colorful_path_dp () =
  let g = Graph.path_graph 5 in
  (* the identity coloring on a path makes the whole path colorful *)
  let colors = Array.init 5 Fun.id in
  (match Color_coding.colorful_path g colors 5 with
  | Some p ->
      Alcotest.(check bool) "witness" true (Graph.is_simple_path g p);
      Alcotest.(check int) "length" 5 (List.length p)
  | None -> Alcotest.fail "expected colorful path");
  (* a monochromatic coloring admits no colorful 2-path *)
  let mono = Array.make 5 0 in
  Alcotest.(check bool) "monochromatic" true
    (Color_coding.colorful_path g mono 2 = None);
  Alcotest.(check bool) "bad color range" true
    (try ignore (Color_coding.colorful_path g (Array.make 5 7) 2); false
     with Invalid_argument _ -> true)

let test_dp_finder () =
  let path5 = Graph.path_graph 5 in
  Alcotest.(check bool) "finds the 5-path" true
    (Color_coding.has_simple_path_dp ~trials:500 path5 5);
  Alcotest.(check bool) "rejects 6" false
    (Color_coding.has_simple_path_dp ~trials:50 path5 6);
  (match Color_coding.find_simple_path_dp ~trials:500 path5 4 with
  | Some p -> Alcotest.(check bool) "witness" true (Graph.is_simple_path path5 p)
  | None -> Alcotest.fail "expected");
  Alcotest.(check bool) "k=0" true (Color_coding.has_simple_path_dp path5 0);
  Alcotest.(check bool) "k=1" true (Color_coding.has_simple_path_dp path5 1)

(* ------------------------------------------------------------------ *)
(* Properties: the central Theorem-2 correctness statement *)

(* A larger end-to-end consistency check across every evaluator. *)
let test_cross_engine_integration () =
  let rng = Random.State.make [| 2026 |] in
  let db =
    Paradb_workload.Generators.edge_database rng ~nodes:300 ~edges:1200
  in
  let q =
    Paradb_workload.Generators.chain_query ~length:3
      ~neq:[ (0, 2); (1, 3); (0, 3) ]
  in
  let reference = Cq_naive.evaluate db q in
  let family =
    Hashing.Random_trials
      { trials = Hashing.default_trials ~c:6.0 ~k:3; seed = 9 }
  in
  Alcotest.(check bool) "engine (random family)" true
    (Relation.set_equal (Engine.evaluate ~family db q) reference);
  Alcotest.(check bool) "join-based" true
    (Relation.set_equal (Paradb_eval.Join_eval.evaluate db q) reference);
  let stats = Engine.new_stats () in
  ignore (Engine.is_satisfiable ~family ~stats db q);
  Alcotest.(check bool) "peak rows recorded" true (stats.Engine.peak_rows > 0)

let qcheck_tests =
  [
    Qgen.seeded_property ~name:"engine = naive on random acyclic queries (sweep)"
      ~count:150 (fun rng ->
        let db = Qgen.tree_cq_database rng ~max_arity:3 ~domain_size:4 ~tuples:10 in
        let q =
          Qgen.random_tree_cq rng ~max_atoms:4 ~max_arity:3 ~neq_tries:4
            ~domain_size:4
        in
        Relation.set_equal (Engine.evaluate db q) (Cq_naive.evaluate db q));
    Qgen.seeded_property ~name:"engine satisfiability = naive (sweep)" ~count:150
      (fun rng ->
        let db = Qgen.tree_cq_database rng ~max_arity:3 ~domain_size:4 ~tuples:10 in
        let q =
          Qgen.random_tree_cq rng ~max_atoms:4 ~max_arity:3 ~neq_tries:4
            ~domain_size:4
        in
        Engine.is_satisfiable db q = Cq_naive.is_satisfiable db q);
    Qgen.seeded_property ~name:"random family never false-positives" ~count:80
      (fun rng ->
        let db = Qgen.tree_cq_database rng ~max_arity:3 ~domain_size:4 ~tuples:8 in
        let q =
          Qgen.random_tree_cq rng ~max_atoms:3 ~max_arity:3 ~neq_tries:3
            ~domain_size:4
        in
        let family =
          Hashing.Random_trials { trials = 40; seed = Random.State.int rng 10000 }
        in
        (* one-sided error: a positive answer is always correct *)
        (not (Engine.is_satisfiable ~family db q))
        || Cq_naive.is_satisfiable db q);
    Qgen.seeded_property ~name:"exhaustive family = naive on tiny domains"
      ~count:50 (fun rng ->
        let db = Qgen.tree_cq_database rng ~max_arity:2 ~domain_size:3 ~tuples:6 in
        let q =
          Qgen.random_tree_cq rng ~max_atoms:3 ~max_arity:2 ~neq_tries:3
            ~domain_size:3
        in
        Engine.is_satisfiable ~family:Hashing.Exhaustive db q
        = Cq_naive.is_satisfiable db q);
    Qgen.seeded_property ~name:"color coding = backtracking path search"
      ~count:60 (fun rng ->
        let n = 4 + Random.State.int rng 4 in
        let g = Graph.gnp rng n 0.35 in
        let k = 2 + Random.State.int rng 3 in
        Color_coding.has_simple_path g k = Graph.has_simple_path g k);
    Qgen.seeded_property ~name:"DP color coding = backtracking" ~count:60
      (fun rng ->
        let n = 4 + Random.State.int rng 5 in
        let g = Graph.gnp rng n 0.35 in
        let k = 2 + Random.State.int rng 3 in
        Color_coding.has_simple_path_dp ~trials:400
          ~seed:(Random.State.int rng 1000) g k
        = Graph.has_simple_path g k);
    Qgen.seeded_property ~name:"comparisons evaluate = naive" ~count:80
      (fun rng ->
        let db = Qgen.tree_cq_database rng ~max_arity:3 ~domain_size:4 ~tuples:8 in
        let q0 =
          Qgen.random_tree_cq rng ~max_atoms:3 ~max_arity:3 ~neq_tries:1
            ~domain_size:4
        in
        (* sprinkle random comparisons *)
        let vars = Array.of_list (Cq.vars q0) in
        let extra =
          List.init (Random.State.int rng 3) (fun _ ->
              let a = vars.(Random.State.int rng (Array.length vars)) in
              let b =
                if Random.State.bool rng then
                  Term.var vars.(Random.State.int rng (Array.length vars))
                else Term.int (Random.State.int rng 4)
              in
              let op = if Random.State.bool rng then Constr.Lt else Constr.Le in
              Constr.make op (Term.var a) b)
        in
        let q =
          Cq.make ~name:q0.Cq.name
            ~constraints:(q0.Cq.constraints @ extra)
            ~head:q0.Cq.head q0.Cq.body
        in
        Relation.set_equal (Comparisons.evaluate db q) (Cq_naive.evaluate db q));
  ]

let () =
  Alcotest.run "core"
    [
      ( "hashing",
        [
          Alcotest.test_case "next_prime" `Quick test_next_prime;
          Alcotest.test_case "default trials" `Quick test_default_trials;
          Alcotest.test_case "k<=1 trivial" `Quick test_trivial_function_for_small_k;
          Alcotest.test_case "ranges" `Quick test_functions_in_range;
          Alcotest.test_case "sweep k-perfect" `Quick test_sweep_is_k_perfect;
          Alcotest.test_case "exhaustive k-perfect" `Quick test_exhaustive_is_k_perfect;
          Alcotest.test_case "exhaustive guard" `Quick test_exhaustive_guard;
          Alcotest.test_case "random replayable" `Quick test_random_family_replayable;
          Alcotest.test_case "random succeeds" `Quick test_random_success_probability;
        ] );
      ( "ineq partition",
        [
          Alcotest.test_case "partition" `Quick test_partition;
          Alcotest.test_case "rejects comparisons" `Quick test_partition_rejects_comparisons;
          Alcotest.test_case "i2 filter" `Quick test_i2_filter;
        ] );
      ( "engine",
        [
          Alcotest.test_case "employees example" `Quick test_employees_multi_project;
          Alcotest.test_case "students example" `Quick test_students_example;
          Alcotest.test_case "cyclic rejected" `Quick test_engine_cyclic_rejected;
          Alcotest.test_case "no constraints" `Quick test_engine_no_constraints_is_yannakakis;
          Alcotest.test_case "stats" `Quick test_engine_stats;
          Alcotest.test_case "empty base" `Quick test_engine_unsat_early_empty;
          Alcotest.test_case "decide" `Quick test_decide;
          Alcotest.test_case "per-coloring soundness" `Quick test_single_coloring_soundness;
          Alcotest.test_case "long chain" `Quick test_long_chain_i1;
        ] );
      ( "integration",
        [ Alcotest.test_case "cross-engine, 300 nodes" `Slow
            test_cross_engine_integration ] );
      ( "formula extension",
        [
          Alcotest.test_case "disjunction" `Quick test_formula_disjunction;
          Alcotest.test_case "guard" `Quick test_formula_guard;
          Alcotest.test_case "split constants" `Quick test_split_constant_conjuncts;
          Alcotest.test_case "parameter-v driver" `Quick test_formula_v_driver;
        ] );
      ( "comparisons",
        [
          Alcotest.test_case "consistent" `Quick test_comparisons_consistent;
          Alcotest.test_case "cycle" `Quick test_comparisons_cycle_inconsistent;
          Alcotest.test_case "collapse" `Quick test_comparisons_collapse;
          Alcotest.test_case "constant order" `Quick test_comparisons_constants_order;
          Alcotest.test_case "neq after collapse" `Quick test_comparisons_neq_after_collapse;
          Alcotest.test_case "salary example" `Quick test_comparisons_evaluate;
          Alcotest.test_case "dispatch" `Quick test_comparisons_dispatch_to_engine;
        ] );
      ( "color coding",
        [
          Alcotest.test_case "query shape" `Quick test_path_query_shape;
          Alcotest.test_case "known graphs" `Quick test_paths_on_known_graphs;
          Alcotest.test_case "tiny k" `Quick test_path_k1_k0;
          Alcotest.test_case "colorful path dp" `Quick test_colorful_path_dp;
          Alcotest.test_case "dp finder" `Quick test_dp_finder;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
