module Graph = Paradb_graph.Graph
module Digraph = Paradb_graph.Digraph

let test_basic () =
  let g = Graph.of_edges 5 [ (0, 1); (1, 2); (0, 1) ] in
  Alcotest.(check int) "n" 5 (Graph.n_vertices g);
  Alcotest.(check int) "m (dedup)" 2 (Graph.n_edges g);
  Alcotest.(check bool) "edge" true (Graph.has_edge g 1 0);
  Alcotest.(check bool) "no edge" false (Graph.has_edge g 0 2);
  Alcotest.(check (list int)) "neighbors" [ 0; 2 ] (Graph.neighbors g 1);
  Alcotest.(check int) "degree" 2 (Graph.degree g 1)

let test_self_loop () =
  let g = Graph.of_edges 2 [ (0, 0) ] in
  Alcotest.(check bool) "self loop" true (Graph.has_edge g 0 0);
  Alcotest.(check int) "m" 1 (Graph.n_edges g)

let test_bounds () =
  let g = Graph.create 3 in
  Alcotest.check_raises "out of range" (Invalid_argument "Graph: vertex out of range")
    (fun () -> ignore (Graph.has_edge g 0 3))

let test_complement () =
  let g = Graph.of_edges 3 [ (0, 1) ] in
  let c = Graph.complement g in
  Alcotest.(check bool) "dropped" false (Graph.has_edge c 0 1);
  Alcotest.(check bool) "added" true (Graph.has_edge c 0 2);
  Alcotest.(check int) "m" 2 (Graph.n_edges c)

let test_disjoint_union () =
  let g = Graph.of_edges 2 [ (0, 1) ] in
  let h = Graph.of_edges 3 [ (1, 2) ] in
  let u = Graph.disjoint_union g h in
  Alcotest.(check int) "n" 5 (Graph.n_vertices u);
  Alcotest.(check bool) "g edge" true (Graph.has_edge u 0 1);
  Alcotest.(check bool) "h edge shifted" true (Graph.has_edge u 3 4);
  Alcotest.(check bool) "no cross" false (Graph.has_edge u 1 2)

let test_apex () =
  let g = Graph.of_edges 2 [] in
  let a = Graph.add_apex_clique g 2 in
  Alcotest.(check int) "n" 4 (Graph.n_vertices a);
  Alcotest.(check bool) "apex-apex" true (Graph.has_edge a 2 3);
  Alcotest.(check bool) "apex-old" true (Graph.has_edge a 2 0);
  Alcotest.(check bool) "old untouched" false (Graph.has_edge a 0 1)

let test_clique () =
  let g = Graph.of_edges 5 [ (0, 1); (1, 2); (0, 2); (2, 3) ] in
  Alcotest.(check bool) "3-clique" true (Graph.has_clique g 3);
  Alcotest.(check bool) "no 4-clique" false (Graph.has_clique g 4);
  (match Graph.find_clique g 3 with
   | Some vs -> Alcotest.(check bool) "witness" true (Graph.is_clique g vs)
   | None -> Alcotest.fail "expected clique");
  Alcotest.(check bool) "0-clique" true (Graph.has_clique g 0);
  Alcotest.(check bool) "complete" true (Graph.has_clique (Graph.complete_graph 6) 6)

let test_simple_path () =
  let g = Graph.path_graph 5 in
  Alcotest.(check bool) "full path" true (Graph.has_simple_path g 5);
  Alcotest.(check bool) "no 6 path" false (Graph.has_simple_path g 6);
  (match Graph.find_simple_path g 4 with
   | Some p ->
       Alcotest.(check int) "length" 4 (List.length p);
       Alcotest.(check bool) "valid" true (Graph.is_simple_path g p)
   | None -> Alcotest.fail "expected path");
  let tri = Graph.cycle_graph 3 in
  Alcotest.(check bool) "cycle path" true (Graph.has_simple_path tri 3)

let test_hamiltonian () =
  Alcotest.(check bool) "path graph" true (Graph.hamiltonian_path (Graph.path_graph 4) <> None);
  let star = Graph.of_edges 4 [ (0, 1); (0, 2); (0, 3) ] in
  Alcotest.(check bool) "star has none" true (Graph.hamiltonian_path star = None)

let test_dominating_set () =
  let star = Graph.of_edges 5 [ (0, 1); (0, 2); (0, 3); (0, 4) ] in
  Alcotest.(check bool) "star k=1" true (Graph.has_dominating_set star 1);
  (match Graph.find_dominating_set star 1 with
   | Some vs -> Alcotest.(check bool) "witness" true (Graph.is_dominating star vs)
   | None -> Alcotest.fail "expected");
  let p5 = Graph.path_graph 5 in
  Alcotest.(check bool) "path k=1" false (Graph.has_dominating_set p5 1);
  Alcotest.(check bool) "path k=2" true (Graph.has_dominating_set p5 2);
  Alcotest.(check bool) "k >= n trivial" true (Graph.has_dominating_set p5 9);
  Alcotest.(check bool) "empty set on empty graph" true
    (Graph.has_dominating_set (Graph.create 0) 0);
  Alcotest.(check bool) "isolated vertex needs itself" false
    (Graph.has_dominating_set (Graph.create 2) 1)

let test_generators () =
  let rng = Random.State.make [| 3 |] in
  let g, planted = Graph.planted_clique rng 12 0.1 4 in
  Alcotest.(check bool) "planted clique" true (Graph.is_clique g planted);
  let g2, path = Graph.planted_path rng 12 0.05 5 in
  Alcotest.(check bool) "planted path" true (Graph.is_simple_path g2 path);
  let dense = Graph.gnp rng 10 1.0 in
  Alcotest.(check int) "complete gnp" 45 (Graph.n_edges dense);
  let sparse = Graph.gnp rng 10 0.0 in
  Alcotest.(check int) "empty gnp" 0 (Graph.n_edges sparse)

(* digraph *)

let test_digraph_basic () =
  let g = Digraph.of_edges 4 [ (0, 1); (1, 2); (2, 0); (2, 3) ] in
  Alcotest.(check bool) "edge" true (Digraph.has_edge g 0 1);
  Alcotest.(check bool) "directed" false (Digraph.has_edge g 1 0);
  Alcotest.(check (list int)) "succ" [ 0; 3 ] (Digraph.successors g 2)

let test_sccs () =
  let g = Digraph.of_edges 6 [ (0, 1); (1, 2); (2, 0); (2, 3); (3, 4); (4, 3); (4, 5) ] in
  let comp, count = Digraph.sccs g in
  Alcotest.(check int) "count" 3 count;
  Alcotest.(check bool) "triangle scc" true (comp.(0) = comp.(1) && comp.(1) = comp.(2));
  Alcotest.(check bool) "pair scc" true (comp.(3) = comp.(4));
  Alcotest.(check bool) "separate" true (comp.(0) <> comp.(3) && comp.(3) <> comp.(5));
  (* reverse-topological numbering: edge from comp a to comp b => a > b *)
  Alcotest.(check bool) "topo order" true (comp.(0) > comp.(3) && comp.(3) > comp.(5))

let test_reachable () =
  let g = Digraph.of_edges 4 [ (0, 1); (1, 2) ] in
  let r = Digraph.reachable g 0 in
  Alcotest.(check bool) "reaches 2" true r.(2);
  Alcotest.(check bool) "not 3" false r.(3);
  Alcotest.(check bool) "self" true r.(0)

let qcheck_tests =
  [
    Qgen.seeded_property ~name:"planted clique found by search" ~count:40
      (fun rng ->
        let k = 3 + Random.State.int rng 2 in
        let g, _ = Graph.planted_clique rng 10 0.2 k in
        Graph.has_clique g k);
    Qgen.seeded_property ~name:"clique witness is a clique" ~count:40
      (fun rng ->
        let g = Graph.gnp rng 9 0.5 in
        match Graph.find_clique g 3 with
        | Some vs -> Graph.is_clique g vs && List.length vs = 3
        | None -> not (Graph.has_clique g 3));
    Qgen.seeded_property ~name:"sccs partition the vertices" ~count:50
      (fun rng ->
        let n = 2 + Random.State.int rng 8 in
        let g = Digraph.create n in
        for _ = 1 to n * 2 do
          Digraph.add_edge g (Random.State.int rng n) (Random.State.int rng n)
        done;
        let comp, count = Digraph.sccs g in
        Array.for_all (fun c -> c >= 0 && c < count) comp);
    Qgen.seeded_property ~name:"mutual reachability = same scc" ~count:50
      (fun rng ->
        let n = 2 + Random.State.int rng 6 in
        let g = Digraph.create n in
        for _ = 1 to n * 2 do
          Digraph.add_edge g (Random.State.int rng n) (Random.State.int rng n)
        done;
        let comp, _ = Digraph.sccs g in
        let ok = ref true in
        for u = 0 to n - 1 do
          let ru = Digraph.reachable g u in
          for v = 0 to n - 1 do
            let rv = Digraph.reachable g v in
            let mutual = ru.(v) && rv.(u) in
            if mutual <> (comp.(u) = comp.(v)) then ok := false
          done
        done;
        !ok);
  ]

let () =
  Alcotest.run "graph"
    [
      ( "graph",
        [
          Alcotest.test_case "basics" `Quick test_basic;
          Alcotest.test_case "self loops" `Quick test_self_loop;
          Alcotest.test_case "bounds" `Quick test_bounds;
          Alcotest.test_case "complement" `Quick test_complement;
          Alcotest.test_case "disjoint union" `Quick test_disjoint_union;
          Alcotest.test_case "apex clique" `Quick test_apex;
          Alcotest.test_case "clique search" `Quick test_clique;
          Alcotest.test_case "simple paths" `Quick test_simple_path;
          Alcotest.test_case "hamiltonian" `Quick test_hamiltonian;
          Alcotest.test_case "dominating sets" `Quick test_dominating_set;
          Alcotest.test_case "generators" `Quick test_generators;
        ] );
      ( "digraph",
        [
          Alcotest.test_case "basics" `Quick test_digraph_basic;
          Alcotest.test_case "sccs" `Quick test_sccs;
          Alcotest.test_case "reachable" `Quick test_reachable;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
