module Relation = Paradb_relational.Relation
module Database = Paradb_relational.Database
module Tuple = Paradb_relational.Tuple
module Value = Paradb_relational.Value
module Cq_naive = Paradb_eval.Cq_naive
module Fo_naive = Paradb_eval.Fo_naive
open Paradb_query

let db =
  Parser.parse_facts
    "e(1, 2). e(2, 3). e(3, 4). e(1, 3). e(4, 4). color(1, red). color(2, blue)."

(* ------------------------------------------------------------------ *)
(* Naive CQ evaluation *)

let test_chain () =
  let q = Parser.parse_cq "ans(X, Y) :- e(X, Z), e(Z, Y)." in
  let r = Cq_naive.evaluate db q in
  Alcotest.(check int) "paths of length 2" 5 (Relation.cardinality r);
  Alcotest.(check bool) "1-3" true (Relation.mem (Tuple.of_ints [ 1; 3 ]) r);
  Alcotest.(check bool) "4-4 via self loop" true
    (Relation.mem (Tuple.of_ints [ 4; 4 ]) r)

let test_constants_in_atoms () =
  let q = Parser.parse_cq "ans(X) :- e(1, X)." in
  let r = Cq_naive.evaluate db q in
  Alcotest.(check int) "successors of 1" 2 (Relation.cardinality r)

let test_repeated_vars () =
  let q = Parser.parse_cq "ans(X) :- e(X, X)." in
  let r = Cq_naive.evaluate db q in
  Alcotest.(check int) "self loops" 1 (Relation.cardinality r);
  Alcotest.(check bool) "4" true (Relation.mem (Tuple.of_ints [ 4 ]) r)

let test_neq () =
  let q = Parser.parse_cq "ans(X, Y) :- e(X, Z), e(Z, Y), X != Y." in
  let r = Cq_naive.evaluate db q in
  Alcotest.(check bool) "no 4-4" false (Relation.mem (Tuple.of_ints [ 4; 4 ]) r);
  Alcotest.(check int) "rest" 4 (Relation.cardinality r)

let test_comparison () =
  let q = Parser.parse_cq "ans(X, Y) :- e(X, Y), X < Y." in
  Alcotest.(check int) "forward edges" 4
    (Relation.cardinality (Cq_naive.evaluate db q));
  let q2 = Parser.parse_cq "ans(X, Y) :- e(X, Y), Y <= X." in
  Alcotest.(check int) "non-forward" 1
    (Relation.cardinality (Cq_naive.evaluate db q2))

let test_neq_constant () =
  let q = Parser.parse_cq "ans(X) :- e(X, Y), X != 1." in
  let r = Cq_naive.evaluate db q in
  Alcotest.(check bool) "no 1" false (Relation.mem (Tuple.of_ints [ 1 ]) r);
  Alcotest.(check int) "others" 3 (Relation.cardinality r)

let test_boolean_queries () =
  Alcotest.(check bool) "sat" true
    (Cq_naive.is_satisfiable db (Parser.parse_cq "goal :- e(X, Y), e(Y, X)."));
  Alcotest.(check bool) "unsat" false
    (Cq_naive.is_satisfiable db (Parser.parse_cq "goal :- e(X, 9)."));
  (* head constants *)
  let q = Parser.parse_cq "ans(1, X) :- e(1, X)." in
  let r = Cq_naive.evaluate db q in
  Alcotest.(check bool) "constant head" true
    (Relation.mem (Tuple.of_ints [ 1; 2 ]) r)

let test_decide () =
  let q = Parser.parse_cq "ans(X, Y) :- e(X, Z), e(Z, Y)." in
  Alcotest.(check bool) "in" true (Cq_naive.decide db q (Tuple.of_ints [ 1; 3 ]));
  Alcotest.(check bool) "out" false (Cq_naive.decide db q (Tuple.of_ints [ 3; 1 ]));
  Alcotest.(check bool) "wrong arity" false (Cq_naive.decide db q (Tuple.of_ints [ 1 ]))

let test_empty_body () =
  let q = Cq.make ~head:[ Term.int 5 ] [] in
  let r = Cq_naive.evaluate db q in
  Alcotest.(check bool) "trivial" true (Relation.mem (Tuple.of_ints [ 5 ]) r)

let test_cross_product_query () =
  (* atoms sharing no variables *)
  let q = Parser.parse_cq "ans(X, Y) :- e(X, 2), e(3, Y)." in
  let r = Cq_naive.evaluate db q in
  Alcotest.(check int) "product" 1 (Relation.cardinality r);
  Alcotest.(check bool) "1-4" true (Relation.mem (Tuple.of_ints [ 1; 4 ]) r)

let test_stats_count_probes () =
  let stats = Cq_naive.new_stats () in
  let q = Parser.parse_cq "goal :- e(X, Y)." in
  ignore (Cq_naive.evaluate ~stats db q);
  Alcotest.(check int) "probes = |e|" 5 stats.Cq_naive.probes

let test_atom_ordering_equivalent () =
  let q = Parser.parse_cq "ans(X) :- e(X, Y), e(Y, Z), e(Z, 4)." in
  let a = Cq_naive.evaluate ~order_atoms:true db q in
  let b = Cq_naive.evaluate ~order_atoms:false db q in
  Alcotest.(check bool) "same result" true (Relation.set_equal a b)

(* ------------------------------------------------------------------ *)
(* FO evaluation *)

let test_fo_atoms () =
  Alcotest.(check bool) "holds" true
    (Fo_naive.sentence_holds db (Parser.parse_fo "exists X. e(X, 2)"));
  Alcotest.(check bool) "fails" false
    (Fo_naive.sentence_holds db (Parser.parse_fo "exists X. e(X, 9)"))

let test_fo_negation () =
  (* some node has no outgoing edge to 4 *)
  Alcotest.(check bool) "negation" true
    (Fo_naive.sentence_holds db (Parser.parse_fo "exists X. !e(X, 4)"));
  (* every node with an outgoing edge... *)
  Alcotest.(check bool) "forall" true
    (Fo_naive.sentence_holds db
       (Parser.parse_fo "forall X Y. (e(X, Y) -> exists Z. e(X, Z))"))

let test_fo_forall_vacuous () =
  Alcotest.(check bool) "vacuous forall" true
    (Fo_naive.sentence_holds db (Parser.parse_fo "forall X. (e(9, X) -> false)"))

let test_fo_equality () =
  Alcotest.(check bool) "eq" true
    (Fo_naive.sentence_holds db (Parser.parse_fo "exists X. (e(X, X) & X = 4)"));
  Alcotest.(check bool) "neq" false
    (Fo_naive.sentence_holds db (Parser.parse_fo "exists X. (e(X, X) & X != 4)"))

let test_fo_difference_from_positive () =
  (* nodes with an incoming but no outgoing edge: only 4 has self loop...
     actually 4 has outgoing (4,4); try target-only detection on 'color' *)
  Alcotest.(check bool) "difference" true
    (Fo_naive.sentence_holds db
       (Parser.parse_fo "exists X. (color(X, red) & !color(X, blue))"))

let test_fo_free_vars () =
  let f = Parser.parse_fo "e(X, Y) & !(X = Y)" in
  let r = Fo_naive.evaluate db f ~head:[ "X"; "Y" ] in
  Alcotest.(check int) "pairs" 4 (Relation.cardinality r);
  Alcotest.(check bool) "head must cover" true
    (try ignore (Fo_naive.evaluate db f ~head:[ "X" ]); false
     with Invalid_argument _ -> true)

let test_fo_custom_domain () =
  let f = Parser.parse_fo "forall X. e(X, X)" in
  Alcotest.(check bool) "restricted domain" true
    (Fo_naive.sentence_holds ~domain:[ Value.Int 4 ] db f);
  Alcotest.(check bool) "full domain" false (Fo_naive.sentence_holds db f)

let test_fo_constants_in_domain () =
  (* the constant 9 is not in the active database domain, but the formula
     mentions it, so quantifiers must see it *)
  Alcotest.(check bool) "formula constant" true
    (Fo_naive.sentence_holds db (Parser.parse_fo "exists X. X = 9"))

(* ------------------------------------------------------------------ *)
(* Join-based evaluation *)

let test_join_eval_basic () =
  let q = Parser.parse_cq "ans(X, Y) :- e(X, Z), e(Z, Y), X != Y." in
  let reference = Cq_naive.evaluate db q in
  Alcotest.(check bool) "hash join" true
    (Relation.set_equal (Paradb_eval.Join_eval.evaluate db q) reference);
  Alcotest.(check bool) "sort merge" true
    (Relation.set_equal
       (Paradb_eval.Join_eval.evaluate ~algorithm:Paradb_eval.Join_eval.Sort_merge db q)
       reference)

let test_join_eval_cross_product () =
  let q = Parser.parse_cq "ans(X, Y) :- e(X, 2), e(3, Y)." in
  Alcotest.(check bool) "disconnected atoms" true
    (Relation.set_equal (Paradb_eval.Join_eval.evaluate db q)
       (Cq_naive.evaluate db q))

let test_join_eval_constants_comparisons () =
  let q = Parser.parse_cq "ans(X) :- e(X, Y), e(Y, Y), X < Y, X != 1." in
  Alcotest.(check bool) "selections" true
    (Relation.set_equal (Paradb_eval.Join_eval.evaluate db q)
       (Cq_naive.evaluate db q))

let test_join_eval_empty_body () =
  let q = Cq.make ~head:[ Term.int 9 ] [] in
  Alcotest.(check bool) "trivial" true
    (Relation.mem (Tuple.of_ints [ 9 ]) (Paradb_eval.Join_eval.evaluate db q))

(* cross-check: boolean CQs against the FO evaluator *)
let qcheck_tests =
  [
    Qgen.seeded_property ~name:"cq eval agrees with fo eval" ~count:80
      (fun rng ->
        let db =
          Qgen.tree_cq_database rng ~max_arity:3 ~domain_size:4 ~tuples:10
        in
        let q =
          Qgen.random_tree_cq rng ~max_atoms:3 ~max_arity:3 ~neq_tries:2
            ~domain_size:4
        in
        let boolean =
          Cq.make ~name:q.Cq.name ~constraints:q.Cq.constraints ~head:[]
            q.Cq.body
        in
        let f = Fo.of_boolean_cq boolean in
        Cq_naive.is_satisfiable db boolean = Fo_naive.sentence_holds db f);
    Qgen.seeded_property ~name:"join-based eval = naive (hash)" ~count:100
      (fun rng ->
        let db = Qgen.tree_cq_database rng ~max_arity:3 ~domain_size:4 ~tuples:10 in
        let q =
          Qgen.random_tree_cq rng ~max_atoms:4 ~max_arity:3 ~neq_tries:3
            ~domain_size:4
        in
        Relation.set_equal (Paradb_eval.Join_eval.evaluate db q)
          (Cq_naive.evaluate db q));
    Qgen.seeded_property ~name:"join-based eval = naive (sort-merge)" ~count:60
      (fun rng ->
        let db = Qgen.tree_cq_database rng ~max_arity:3 ~domain_size:4 ~tuples:10 in
        let q =
          Qgen.random_tree_cq rng ~max_atoms:4 ~max_arity:3 ~neq_tries:3
            ~domain_size:4
        in
        Relation.set_equal
          (Paradb_eval.Join_eval.evaluate
             ~algorithm:Paradb_eval.Join_eval.Sort_merge db q)
          (Cq_naive.evaluate db q));
    Qgen.seeded_property ~name:"decide = membership in evaluate" ~count:60
      (fun rng ->
        let db =
          Qgen.tree_cq_database rng ~max_arity:3 ~domain_size:3 ~tuples:8
        in
        let q =
          Qgen.random_tree_cq rng ~max_atoms:3 ~max_arity:3 ~neq_tries:1
            ~domain_size:3
        in
        let result = Cq_naive.evaluate db q in
        let all_match =
          Relation.fold
            (fun row acc -> acc && Cq_naive.decide db q row)
            result true
        in
        (* also check one tuple not in the result *)
        let witness_out =
          let candidate =
            Array.make (List.length q.Cq.head) (Value.Int 99)
          in
          not (Relation.mem candidate result) && not (Cq_naive.decide db q candidate)
        in
        all_match && witness_out);
  ]

let () =
  Alcotest.run "eval"
    [
      ( "cq naive",
        [
          Alcotest.test_case "chain" `Quick test_chain;
          Alcotest.test_case "constants" `Quick test_constants_in_atoms;
          Alcotest.test_case "repeated vars" `Quick test_repeated_vars;
          Alcotest.test_case "neq" `Quick test_neq;
          Alcotest.test_case "comparisons" `Quick test_comparison;
          Alcotest.test_case "neq constant" `Quick test_neq_constant;
          Alcotest.test_case "boolean" `Quick test_boolean_queries;
          Alcotest.test_case "decide" `Quick test_decide;
          Alcotest.test_case "empty body" `Quick test_empty_body;
          Alcotest.test_case "cross product" `Quick test_cross_product_query;
          Alcotest.test_case "stats" `Quick test_stats_count_probes;
          Alcotest.test_case "ordering equivalence" `Quick test_atom_ordering_equivalent;
        ] );
      ( "join based",
        [
          Alcotest.test_case "basic" `Quick test_join_eval_basic;
          Alcotest.test_case "cross product" `Quick test_join_eval_cross_product;
          Alcotest.test_case "selections" `Quick test_join_eval_constants_comparisons;
          Alcotest.test_case "empty body" `Quick test_join_eval_empty_body;
        ] );
      ( "fo naive",
        [
          Alcotest.test_case "atoms" `Quick test_fo_atoms;
          Alcotest.test_case "negation" `Quick test_fo_negation;
          Alcotest.test_case "vacuous forall" `Quick test_fo_forall_vacuous;
          Alcotest.test_case "equality" `Quick test_fo_equality;
          Alcotest.test_case "difference" `Quick test_fo_difference_from_positive;
          Alcotest.test_case "free variables" `Quick test_fo_free_vars;
          Alcotest.test_case "custom domain" `Quick test_fo_custom_domain;
          Alcotest.test_case "formula constants" `Quick test_fo_constants_in_domain;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
