test/test_containment.ml: Alcotest Array Cq List Paradb_containment Paradb_eval Paradb_query Paradb_relational Parser QCheck_alcotest Qgen
