test/test_relational.ml: Alcotest Array List Paradb_relational QCheck_alcotest Qgen Random
