test/test_graph.ml: Alcotest Array List Paradb_graph QCheck_alcotest Qgen Random
