test/test_datalog.ml: Alcotest Array List Paradb_datalog Paradb_graph Paradb_query Paradb_relational Paradb_workload Parser Printf Program QCheck_alcotest Qgen Random String
