test/test_wsat.ml: Alcotest Array List Paradb_graph Paradb_wsat QCheck_alcotest Qgen Random Seq
