test/test_yannakakis.mli:
