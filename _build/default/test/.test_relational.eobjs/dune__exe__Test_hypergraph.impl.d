test/test_hypergraph.ml: Alcotest Array List Paradb_hypergraph Paradb_query Parser Printf QCheck_alcotest Qgen Random String
