test/test_workload.ml: Alcotest Cq Fun List Paradb_core Paradb_datalog Paradb_eval Paradb_query Paradb_relational Paradb_workload Program Random String Sys
