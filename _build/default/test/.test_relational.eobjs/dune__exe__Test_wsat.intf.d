test/test_wsat.mli:
