test/test_query.ml: Alcotest Atom Binding Constr Cq Fact_format Fo Gen Ineq_formula List Paradb_eval Paradb_query Paradb_relational Parser Printf Program QCheck QCheck_alcotest Qgen Rule String Term
