test/test_eval.ml: Alcotest Array Cq Fo List Paradb_eval Paradb_query Paradb_relational Parser QCheck_alcotest Qgen Term
