module Relation = Paradb_relational.Relation
module Containment = Paradb_containment.Containment
module Cq_naive = Paradb_eval.Cq_naive
open Paradb_query

let cq = Parser.parse_cq

(* ------------------------------------------------------------------ *)
(* Canonical databases *)

let test_canonical_database () =
  let q = cq "ans(X) :- e(X, Y), e(Y, 3)." in
  let db, head = Containment.canonical_database q in
  let module Database = Paradb_relational.Database in
  Alcotest.(check int) "one relation" 1 (List.length (Database.names db));
  Alcotest.(check int) "two frozen tuples" 2
    (Relation.cardinality (Database.find db "e"));
  Alcotest.(check int) "head arity" 1 (Array.length head);
  (* the query is satisfied by its own canonical database *)
  Alcotest.(check bool) "self-satisfying" true (Cq_naive.decide db q head)

(* ------------------------------------------------------------------ *)
(* Containment *)

let test_containment_classics () =
  let path2 = cq "ans(X) :- e(X, Y), e(Y, Z)." in
  let edge = cq "ans(X) :- e(X, Y)." in
  Alcotest.(check bool) "path2 in edge" true (Containment.contained path2 edge);
  Alcotest.(check bool) "edge not in path2" false (Containment.contained edge path2);
  (* boolean: triangle implies 2-path exists *)
  let tri = cq "g() :- e(X, Y), e(Y, Z), e(Z, X)." in
  let p2 = cq "g() :- e(X, Y), e(Y, Z)." in
  Alcotest.(check bool) "triangle in p2" true (Containment.contained tri p2);
  Alcotest.(check bool) "p2 not in triangle" false (Containment.contained p2 tri);
  (* constants restrict *)
  let specific = cq "ans(X) :- e(X, 3)." in
  let general = cq "ans(X) :- e(X, Y)." in
  Alcotest.(check bool) "specific in general" true
    (Containment.contained specific general);
  Alcotest.(check bool) "general not in specific" false
    (Containment.contained general specific)

let test_head_discipline () =
  (* same body, different heads: ans(X) vs ans(Y) are incomparable on
     asymmetric relations *)
  let qx = cq "ans(X) :- e(X, Y)." in
  let qy = cq "ans(Y) :- e(X, Y)." in
  Alcotest.(check bool) "x not in y" false (Containment.contained qx qy);
  Alcotest.(check bool) "y not in x" false (Containment.contained qy qx);
  (* arity mismatch is never contained *)
  let q2 = cq "ans(X, Y) :- e(X, Y)." in
  Alcotest.(check bool) "arity mismatch" false (Containment.contained qx q2)

let test_equivalence () =
  (* same query up to variable renaming *)
  let a = cq "ans(X) :- e(X, Y), e(Y, Z)." in
  let b = cq "ans(A) :- e(A, B), e(B, C)." in
  Alcotest.(check bool) "renamed equal" true (Containment.equivalent a b);
  (* adding a redundant atom preserves equivalence *)
  let c = cq "ans(X) :- e(X, Y), e(Y, Z), e(X, W)." in
  Alcotest.(check bool) "redundancy" true (Containment.equivalent a c)

let test_disjoint_relations () =
  (* q2 mentions a relation absent from q1's body: containment must not
     crash, and cannot hold unless vacuous *)
  let q1 = cq "g() :- e(X, Y)." in
  let q2 = cq "g() :- f(X)." in
  Alcotest.(check bool) "no hom" false (Containment.contained q1 q2)

let test_guards () =
  let q = cq "g() :- e(X, Y), X != Y." in
  Alcotest.(check bool) "constraints rejected" true
    (try ignore (Containment.contained q q); false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Minimization (cores) *)

let test_minimize () =
  let red = cq "ans(X) :- e(X, Y), e(X, Z)." in
  let m = Containment.minimize red in
  Alcotest.(check int) "one atom" 1 (List.length m.Cq.body);
  Alcotest.(check bool) "equivalent" true (Containment.equivalent m red);
  (* a 2-path with a redundant longer shadow *)
  let shadowed = cq "ans(X) :- e(X, Y), e(Y, Z), e(X, U), e(U, V)." in
  let m2 = Containment.minimize shadowed in
  Alcotest.(check int) "two atoms" 2 (List.length m2.Cq.body);
  (* already minimal queries are untouched *)
  let tri = cq "g() :- e(X, Y), e(Y, Z), e(Z, X)." in
  Alcotest.(check int) "triangle is a core" 3
    (List.length (Containment.minimize tri).Cq.body);
  (* head variables pin atoms that would otherwise fold *)
  let pinned = cq "ans(Y, Z) :- e(X, Y), e(X, Z)." in
  Alcotest.(check int) "pinned" 2 (List.length (Containment.minimize pinned).Cq.body)

let test_minimize_to_self_loop () =
  (* a cycle folds onto a self-loop atom if one is present *)
  let q = cq "g() :- e(X, X), e(Y, Z), e(Z, Y)." in
  let m = Containment.minimize q in
  Alcotest.(check int) "folds onto the loop" 1 (List.length m.Cq.body)

(* ------------------------------------------------------------------ *)
(* Properties *)

let qcheck_tests =
  [
    Qgen.seeded_property ~name:"containment is sound on random dbs" ~count:80
      (fun rng ->
        let db = Qgen.tree_cq_database rng ~max_arity:2 ~domain_size:3 ~tuples:8 in
        let mk () =
          let q =
            Qgen.random_tree_cq rng ~max_atoms:3 ~max_arity:2 ~neq_tries:0
              ~domain_size:3
          in
          Cq.make ~name:"g" ~head:[] q.Cq.body
        in
        let q1 = mk () and q2 = mk () in
        (not (Containment.contained q1 q2))
        || (not (Cq_naive.is_satisfiable db q1))
        || Cq_naive.is_satisfiable db q2);
    Qgen.seeded_property ~name:"minimize preserves equivalence" ~count:60
      (fun rng ->
        let q0 =
          Qgen.random_tree_cq rng ~max_atoms:4 ~max_arity:2 ~neq_tries:0
            ~domain_size:3
        in
        let q = Cq.make ~name:"g" ~head:q0.Cq.head q0.Cq.body in
        let m = Containment.minimize q in
        List.length m.Cq.body <= List.length q.Cq.body
        && Containment.equivalent m q);
    Qgen.seeded_property ~name:"minimize is idempotent" ~count:40 (fun rng ->
        let q0 =
          Qgen.random_tree_cq rng ~max_atoms:4 ~max_arity:2 ~neq_tries:0
            ~domain_size:3
        in
        let q = Cq.make ~name:"g" ~head:[] q0.Cq.body in
        let m = Containment.minimize q in
        List.length (Containment.minimize m).Cq.body = List.length m.Cq.body);
    Qgen.seeded_property ~name:"containment is reflexive and transitive"
      ~count:40 (fun rng ->
        let mk () =
          let q =
            Qgen.random_tree_cq rng ~max_atoms:3 ~max_arity:2 ~neq_tries:0
              ~domain_size:3
          in
          Cq.make ~name:"g" ~head:[] q.Cq.body
        in
        let a = mk () and b = mk () and c = mk () in
        Containment.contained a a
        && ((not (Containment.contained a b && Containment.contained b c))
            || Containment.contained a c));
  ]

let () =
  Alcotest.run "containment"
    [
      ( "canonical db",
        [ Alcotest.test_case "freeze" `Quick test_canonical_database ] );
      ( "containment",
        [
          Alcotest.test_case "classics" `Quick test_containment_classics;
          Alcotest.test_case "heads" `Quick test_head_discipline;
          Alcotest.test_case "equivalence" `Quick test_equivalence;
          Alcotest.test_case "disjoint relations" `Quick test_disjoint_relations;
          Alcotest.test_case "guards" `Quick test_guards;
        ] );
      ( "minimization",
        [
          Alcotest.test_case "cores" `Quick test_minimize;
          Alcotest.test_case "fold to loop" `Quick test_minimize_to_self_loop;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
