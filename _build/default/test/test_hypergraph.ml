module Hypergraph = Paradb_hypergraph.Hypergraph
module Join_tree = Paradb_hypergraph.Join_tree
module SS = Paradb_hypergraph.Hypergraph.String_set
open Paradb_query

let acyclic_examples =
  [
    ("single edge", [ [ "a"; "b" ] ]);
    ("path", [ [ "a"; "b" ]; [ "b"; "c" ]; [ "c"; "d" ] ]);
    ("star", [ [ "a"; "b" ]; [ "a"; "c" ]; [ "a"; "d" ] ]);
    ("contained", [ [ "a"; "b"; "c" ]; [ "a"; "b" ]; [ "c" ] ]);
    ("duplicate edges", [ [ "a"; "b" ]; [ "a"; "b" ] ]);
    ("disconnected", [ [ "a"; "b" ]; [ "c"; "d" ] ]);
    ("empty edge", [ [ "a" ]; [] ]);
    ( "big acyclic",
      [ [ "a"; "b"; "c" ]; [ "c"; "d" ]; [ "d"; "e"; "f" ]; [ "c"; "g" ] ] );
  ]

let cyclic_examples =
  [
    ("triangle", [ [ "a"; "b" ]; [ "b"; "c" ]; [ "c"; "a" ] ]);
    ( "square",
      [ [ "a"; "b" ]; [ "b"; "c" ]; [ "c"; "d" ]; [ "d"; "a" ] ] );
    ( "triangle plus pendant",
      [ [ "a"; "b" ]; [ "b"; "c" ]; [ "c"; "a" ]; [ "a"; "x" ] ] );
    ( "cyclic and acyclic components",
      [ [ "a"; "b" ]; [ "b"; "c" ]; [ "c"; "a" ]; [ "p"; "q" ] ] );
  ]

let test_acyclic () =
  List.iter
    (fun (name, edges) ->
      Alcotest.(check bool) name true (Hypergraph.is_acyclic (Hypergraph.make edges)))
    acyclic_examples

let test_cyclic () =
  List.iter
    (fun (name, edges) ->
      Alcotest.(check bool) name false (Hypergraph.is_acyclic (Hypergraph.make edges)))
    cyclic_examples

(* The classic: a triangle covered by a big edge IS acyclic. *)
let test_covered_triangle () =
  let h =
    Hypergraph.make [ [ "a"; "b" ]; [ "b"; "c" ]; [ "c"; "a" ]; [ "a"; "b"; "c" ] ]
  in
  Alcotest.(check bool) "covered triangle acyclic" true (Hypergraph.is_acyclic h)

let test_components () =
  let h = Hypergraph.make [ [ "a"; "b" ]; [ "b"; "c" ]; [ "x" ]; [] ] in
  let comp, count = Hypergraph.components h in
  Alcotest.(check int) "count" 3 count;
  Alcotest.(check bool) "linked" true (comp.(0) = comp.(1));
  Alcotest.(check bool) "separate" true (comp.(2) <> comp.(0))

let test_join_tree_valid () =
  List.iter
    (fun (name, edges) ->
      match Join_tree.of_hypergraph (Hypergraph.make edges) with
      | Some t -> Alcotest.(check bool) (name ^ " valid") true (Join_tree.is_valid t)
      | None -> Alcotest.fail (name ^ ": expected a join tree"))
    acyclic_examples

let test_join_tree_none_for_cyclic () =
  List.iter
    (fun (name, edges) ->
      Alcotest.(check bool) name true
        (Join_tree.of_hypergraph (Hypergraph.make edges) = None))
    cyclic_examples

let test_join_tree_structure () =
  let h = Hypergraph.make [ [ "a"; "b" ]; [ "b"; "c" ]; [ "c"; "d" ] ] in
  match Join_tree.of_hypergraph h with
  | None -> Alcotest.fail "expected tree"
  | Some t ->
      Alcotest.(check int) "nodes" 3 (Join_tree.n_nodes t);
      (* bottom_up covers all nodes, children before parents *)
      Alcotest.(check int) "order covers" 3 (Array.length t.Join_tree.bottom_up);
      let seen = Array.make 3 false in
      Array.iter
        (fun j ->
          List.iter
            (fun c -> Alcotest.(check bool) "child first" true seen.(c))
            t.Join_tree.children.(j);
          seen.(j) <- true)
        t.Join_tree.bottom_up;
      (* subtree vars at the root = all vars *)
      Alcotest.(check int) "root subtree vars" 4
        (SS.cardinal t.Join_tree.subtree_vars.(t.Join_tree.root))

let test_of_cq () =
  let q = Parser.parse_cq "ans(X) :- e(X, Y), e(Y, Z)." in
  Alcotest.(check bool) "chain acyclic" true (Join_tree.of_cq q <> None);
  let tri = Parser.parse_cq "ans() :- e(X, Y), e(Y, Z), e(Z, X)." in
  Alcotest.(check bool) "triangle cyclic" true (Join_tree.of_cq tri = None);
  (* inequalities do not affect the hypergraph *)
  let q2 = Parser.parse_cq "ans() :- e(X, Y), e(Y, Z), X != Z." in
  Alcotest.(check bool) "neq ignored" true (Join_tree.of_cq q2 <> None)

let test_empty () =
  Alcotest.(check bool) "no edges" true
    (Join_tree.of_hypergraph (Hypergraph.make []) = None);
  Alcotest.(check bool) "empty acyclic" true (Hypergraph.is_acyclic (Hypergraph.make []))

let qcheck_tests =
  [
    Qgen.seeded_property ~name:"tree-built queries are acyclic with valid join trees"
      ~count:150 (fun rng ->
        let q = Qgen.random_tree_cq rng ~max_atoms:6 ~max_arity:3 ~neq_tries:0 ~domain_size:3 in
        match Join_tree.of_cq q with
        | Some t -> Join_tree.is_valid t
        | None -> false);
    Qgen.seeded_property ~name:"gyo survivor count consistent with is_acyclic"
      ~count:100 (fun rng ->
        (* random hypergraph: may be cyclic or not *)
        let n_vars = 3 + Random.State.int rng 4 in
        let n_edges = 1 + Random.State.int rng 5 in
        let edges =
          List.init n_edges (fun _ ->
              let size = 1 + Random.State.int rng 3 in
              List.sort_uniq String.compare
                (List.init size (fun _ ->
                     Printf.sprintf "v%d" (Random.State.int rng n_vars))))
        in
        let h = Hypergraph.make edges in
        let _, alive = Hypergraph.gyo h in
        let survivors =
          Array.fold_left (fun acc a -> if a then acc + 1 else acc) 0 alive
        in
        Hypergraph.is_acyclic h = (survivors <= 1));
    Qgen.seeded_property ~name:"join tree exists iff acyclic" ~count:100
      (fun rng ->
        let n_vars = 3 + Random.State.int rng 4 in
        let n_edges = 2 + Random.State.int rng 5 in
        let edges =
          List.init n_edges (fun _ ->
              let size = 1 + Random.State.int rng 3 in
              List.sort_uniq String.compare
                (List.init size (fun _ ->
                     Printf.sprintf "v%d" (Random.State.int rng n_vars))))
        in
        let h = Hypergraph.make edges in
        (Join_tree.of_hypergraph h <> None) = Hypergraph.is_acyclic h);
  ]

let () =
  Alcotest.run "hypergraph"
    [
      ( "gyo",
        [
          Alcotest.test_case "acyclic examples" `Quick test_acyclic;
          Alcotest.test_case "cyclic examples" `Quick test_cyclic;
          Alcotest.test_case "covered triangle" `Quick test_covered_triangle;
          Alcotest.test_case "components" `Quick test_components;
          Alcotest.test_case "empty" `Quick test_empty;
        ] );
      ( "join tree",
        [
          Alcotest.test_case "valid for acyclic" `Quick test_join_tree_valid;
          Alcotest.test_case "none for cyclic" `Quick test_join_tree_none_for_cyclic;
          Alcotest.test_case "structure" `Quick test_join_tree_structure;
          Alcotest.test_case "from cq" `Quick test_of_cq;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
